"""Tests for the query workload generators (§6.1, §6.5)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.workloads.datasets import uniform
from repro.workloads.queries import (
    correlated_queries,
    intersects,
    nonempty_queries,
    real_extracted_queries,
    uncorrelated_queries,
    zipfian_queries,
)

UNIVERSE = 2**40
KEYS = uniform(3000, universe=UNIVERSE, seed=0)


class TestIntersects:
    def test_basic(self):
        keys = np.array([10, 20, 30], dtype=np.uint64)
        assert intersects(keys, 15, 25)
        assert intersects(keys, 20, 20)
        assert not intersects(keys, 21, 29)
        assert not intersects(keys, 0, 9)
        assert not intersects(keys, 31, 100)


class TestUncorrelated:
    def test_shape_and_emptiness(self):
        queries = uncorrelated_queries(200, 32, UNIVERSE, keys=KEYS, seed=1)
        assert len(queries) == 200
        for lo, hi in queries:
            assert hi - lo + 1 == 32
            assert 0 <= lo <= hi < UNIVERSE
            assert not intersects(KEYS, lo, hi)

    def test_deterministic(self):
        a = uncorrelated_queries(50, 8, UNIVERSE, keys=KEYS, seed=3)
        b = uncorrelated_queries(50, 8, UNIVERSE, keys=KEYS, seed=3)
        assert a == b

    def test_can_place_range_at_universe_top(self):
        """Regression: the left-endpoint draw's exclusive high bound
        used to stop one short of ``universe - range_size``, so
        ``hi == universe - 1`` was unreachable and the top of the key
        space silently never got probed."""
        queries = uncorrelated_queries(300, 8, 16, seed=0)
        assert all(hi < 16 for _, hi in queries)
        # lo is drawn from [0, 8]; over 300 draws the topmost placement
        # (hi == 15) is all but certain — and was impossible before.
        assert max(hi for _, hi in queries) == 15

    def test_without_keys_no_empty_enforcement(self):
        queries = uncorrelated_queries(50, 16, UNIVERSE, seed=0)
        assert len(queries) == 50

    def test_too_dense_fails(self):
        dense = np.arange(64, dtype=np.uint64)
        with pytest.raises(InvalidParameterError):
            uncorrelated_queries(10, 32, 64 + 33, keys=dense, seed=0, max_attempts_factor=5)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            uncorrelated_queries(0, 8, UNIVERSE)
        with pytest.raises(InvalidParameterError):
            uncorrelated_queries(10, 0, UNIVERSE)


class TestCorrelated:
    def test_emptiness_and_size(self):
        queries = correlated_queries(KEYS, 150, 16, UNIVERSE, correlation_degree=0.8, seed=2)
        assert len(queries) == 150
        for lo, hi in queries:
            assert hi - lo + 1 == 16
            assert not intersects(KEYS, lo, hi)

    def test_high_degree_hugs_keys(self):
        queries = correlated_queries(KEYS, 200, 4, UNIVERSE, correlation_degree=1.0, seed=4)
        sorted_keys = np.sort(KEYS)
        distances = []
        for lo, _ in queries:
            idx = int(np.searchsorted(sorted_keys, lo)) - 1
            distances.append(lo - int(sorted_keys[idx]))
        # D = 1 means the left endpoint is within ~1 of a key.
        assert np.median(distances) <= 2

    def test_low_degree_spreads_out(self):
        tight = correlated_queries(KEYS, 100, 4, UNIVERSE, correlation_degree=1.0, seed=5)
        loose = correlated_queries(KEYS, 100, 4, UNIVERSE, correlation_degree=0.0, seed=5)
        sorted_keys = np.sort(KEYS)

        def median_distance(queries):
            ds = []
            for lo, _ in queries:
                idx = int(np.searchsorted(sorted_keys, lo)) - 1
                if idx >= 0:
                    ds.append(lo - int(sorted_keys[idx]))
            return np.median(ds)

        assert median_distance(loose) > 100 * max(1, median_distance(tight))

    def test_degree_validation(self):
        with pytest.raises(InvalidParameterError):
            correlated_queries(KEYS, 10, 4, UNIVERSE, correlation_degree=1.5)

    def test_empty_keys_rejected(self):
        with pytest.raises(InvalidParameterError):
            correlated_queries(np.zeros(0, dtype=np.uint64), 10, 4, UNIVERSE)


class TestRealExtracted:
    def test_endpoints_are_removed_keys(self):
        remaining, queries = real_extracted_queries(KEYS, 100, 8, UNIVERSE, seed=6)
        key_set = set(int(k) for k in KEYS)
        remaining_set = set(int(k) for k in remaining)
        assert len(queries) == 100
        assert remaining.size == KEYS.size - 100
        for lo, hi in queries:
            assert lo in key_set and lo not in remaining_set
            assert not intersects(remaining, lo, hi)

    def test_impossible_extraction_fails(self):
        tiny = np.array([5], dtype=np.uint64)
        with pytest.raises(InvalidParameterError):
            real_extracted_queries(tiny, 10, 4, UNIVERSE, seed=0)


class TestZipfian:
    def test_shape_bounds_and_dtype(self):
        los, his = zipfian_queries(KEYS, 500, 32, UNIVERSE, seed=1)
        assert los.shape == his.shape == (500,)
        assert los.dtype == np.uint64 and his.dtype == np.uint64
        assert bool((his - los + 1 == 32).all())
        assert bool((his < UNIVERSE).all())

    def test_deterministic(self):
        a = zipfian_queries(KEYS, 200, 16, UNIVERSE, skew=1.2, seed=9)
        b = zipfian_queries(KEYS, 200, 16, UNIVERSE, skew=1.2, seed=9)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        c = zipfian_queries(KEYS, 200, 16, UNIVERSE, skew=1.2, seed=10)
        assert not np.array_equal(a[0], c[0])

    def test_skew_concentrates_on_hot_keys(self):
        n = 4000
        los, _ = zipfian_queries(
            KEYS, n, 8, UNIVERSE, skew=1.3, n_hot=256, seed=4
        )
        _, counts = np.unique(los, return_counts=True)
        top = np.sort(counts)[::-1]
        # Zipf(1.3) over 256 ranks: the top 10 anchors carry a large
        # multiple of the uniform 10/256 share.
        assert top[:10].sum() > 4 * (10 / 256) * n
        # ... and a uniform draw over the same hot set does not.
        uni = np.random.default_rng(4).integers(0, 256, n)
        _, ucounts = np.unique(uni, return_counts=True)
        assert top[:10].sum() > 2 * np.sort(ucounts)[::-1][:10].sum()

    def test_hot_set_capped_by_key_count(self):
        few = np.sort(
            np.random.default_rng(0).integers(0, UNIVERSE, 50, dtype=np.uint64)
        )
        los, his = zipfian_queries(
            few, 300, 4, UNIVERSE, n_hot=10_000, seed=0
        )
        # Every range still contains its anchor key (jitter < range size),
        # so a 50-key hot set yields at most 50 distinct anchored ranges.
        assert all(
            intersects(few, int(lo), int(hi)) for lo, hi in zip(los, his)
        )

    def test_ranges_hit_keys(self):
        """Zipfian queries aim *at* keys — most ranges are non-empty."""
        los, his = zipfian_queries(KEYS, 300, 16, UNIVERSE, seed=6)
        hits = sum(
            intersects(KEYS, int(lo), int(hi)) for lo, hi in zip(los, his)
        )
        assert hits > 250

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            zipfian_queries(KEYS, 0, 8, UNIVERSE)
        with pytest.raises(InvalidParameterError):
            zipfian_queries(KEYS, 10, 0, UNIVERSE)
        with pytest.raises(InvalidParameterError):
            zipfian_queries(np.zeros(0, dtype=np.uint64), 10, 8, UNIVERSE)


class TestNonEmpty:
    def test_every_range_hits_a_key(self):
        queries = nonempty_queries(KEYS, 150, 32, UNIVERSE, seed=7)
        assert len(queries) == 150
        for lo, hi in queries:
            assert intersects(KEYS, lo, hi)
            assert hi - lo + 1 == 32

    def test_point_ranges(self):
        queries = nonempty_queries(KEYS, 50, 1, UNIVERSE, seed=8)
        key_set = set(int(k) for k in KEYS)
        for lo, hi in queries:
            assert lo == hi and lo in key_set
