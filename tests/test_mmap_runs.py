"""Lifecycle tests for zero-copy mmap-backed run files (format v4).

Three hazards specific to memory-mapped storage, each pinned here:

* **reopen fidelity** — a v4 checkpoint reopened through ``np.memmap``
  must answer every query identically to the engine that wrote it, and
  its runs must actually be backed by the mapping (zero-copy, not a
  read-into-heap fallback);
* **format compatibility** — v3 (row-oriented) run files written by the
  retired legacy writer still load, byte-for-byte equivalent, and the
  next checkpoint rewrites them as v4 without changing any answer
  (v1/v2 reopen fidelity lives in ``test_crash_fuzz``);
* **unmap discipline** — unlinking a mapped run file must not break
  in-flight readers (POSIX keeps mapped pages alive), and a run that
  has been explicitly :meth:`~repro.lsm.sstable.SSTable.release`-d must
  raise :class:`~repro.errors.CorruptionError` cleanly on any further
  read — never serve stale bytes or segfault.
"""

import numpy as np
import pytest

from repro.core.grafite import Grafite
from repro.engine import ShardedEngine, persist
from repro.errors import CorruptionError

UNIVERSE = 2**32
N_KEYS = 4_000


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=12, max_range_size=64, seed=5)


def build_db(path, *, factory=grafite_factory):
    rng = np.random.default_rng(99)
    keys = np.unique(rng.integers(0, UNIVERSE, N_KEYS, dtype=np.uint64))
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=256,
        compaction_fanout=4,
        filter_factory=factory,
        directory=path,
    )
    for key in keys:
        engine.put(int(key), b"v%d" % (key % 97))
    engine.flush_all()
    engine.drain_compactions()
    engine.checkpoint()
    return engine, keys


def probe_all(engine, keys, rng_seed=7):
    """A broad fingerprint of query behaviour: gets, emptiness, scans."""
    rng = np.random.default_rng(rng_seed)
    gets = [engine.get(int(k)) for k in keys[::37]]
    los = rng.integers(0, UNIVERSE - 64, 300, dtype=np.uint64)
    his = los + np.uint64(63)
    batch = engine.batch_range_empty(los, his)
    scan = engine.shards[0].range_scan(0, UNIVERSE // 8)
    return gets, batch.tolist(), scan


def all_runs(engine):
    return [run for store in engine.shards for run in store._runs()]


def test_v4_checkpoint_reopens_mmap_backed_and_identical(tmp_path):
    engine, keys = build_db(tmp_path / "db")
    want = probe_all(engine, keys)

    reopened = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
    assert probe_all(reopened, keys) == want
    runs = all_runs(reopened)
    assert runs, "reopened engine lost its runs"
    for run in runs:
        backing = run._backing
        assert backing is not None, "v4 run loaded without mmap backing"
        assert isinstance(backing, np.memmap)
        # Zero-copy: the key column is a view over the mapping itself.
        assert run.keys_view().base is not None
        assert run.shared_id is not None, "persisted run lost its shared_id"


def test_v3_run_files_still_load_and_upgrade_to_v4(tmp_path):
    engine, keys = build_db(tmp_path / "db")
    want = probe_all(engine, keys)

    # Downgrade every run blob to the retired row-oriented v3 format.
    downgraded = 0
    for sst in (tmp_path / "db").glob("shard-*/*.sst"):
        run = persist.run_from_bytes(sst.read_bytes())
        sst.write_bytes(persist._run_to_bytes_v3(run))
        downgraded += 1
    assert downgraded > 0

    reopened = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
    assert probe_all(reopened, keys) == want
    for run in all_runs(reopened):
        # Legacy blobs decode into heap arrays — no mapping to adopt.
        assert not isinstance(run._backing, np.memmap)

    # The next checkpoint rewrites the runs in the current (v4) format.
    # (The previous epoch's v3 files stay on disk for rollback, so only
    # inspect the files the new manifest actually references.)
    reopened.checkpoint()
    manifest = persist.load_manifest(tmp_path / "db")
    versions = set()
    for sid, names in persist.referenced_runs(manifest).items():
        for name in names:
            buf = (tmp_path / "db" / f"shard-{sid:04d}" / name).read_bytes()
            assert buf[:4] == b"RSST"
            versions.add(int.from_bytes(buf[4:6], "little"))
    assert versions == {4}
    again = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
    assert probe_all(again, keys) == want


def test_unlink_mid_read_keeps_mapped_pages_alive(tmp_path):
    engine, keys = build_db(tmp_path / "db")
    want = probe_all(engine, keys)

    reopened = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
    # Unlink every run file while the runs are mapped and mid-use.
    removed = 0
    for sst in (tmp_path / "db").glob("shard-*/*.sst"):
        sst.unlink()
        removed += 1
    assert removed > 0
    # POSIX semantics: the pages stay valid until the mapping is
    # dropped, so every query keeps answering identically.
    assert probe_all(reopened, keys) == want


def test_reads_after_release_raise_cleanly(tmp_path):
    engine, keys = build_db(tmp_path / "db", factory=None)
    reopened = ShardedEngine.open(tmp_path / "db")
    runs = all_runs(reopened)
    assert runs
    hot = max(runs, key=len)
    lo, hi = hot.key_bounds
    assert hot.scan(lo, hi)  # readable before release
    for run in runs:
        run.release()
        assert run.released
    with pytest.raises(CorruptionError):
        hot.scan(lo, hi)
    with pytest.raises(CorruptionError):
        hot.block_view(0)
    # Idempotent: releasing again is a no-op, not an error.
    hot.release()
