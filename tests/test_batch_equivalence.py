"""Property tests: every vectorised batch path equals its scalar loop.

The batch layer's whole contract is "semantically identical to calling
the scalar method per query" — an equivalence example tests keep
missing at exactly the awkward points (empty key sets, ``lo == hi``,
ranges hugging ``0`` or ``universe - 1``, ranges wider than Grafite's
reduced universe, Elias-Fano's ``lo > hi`` convention). Hypothesis
drives randomized key sets and query mixes through every filter with a
``may_contain_range_batch`` fast path (Grafite, Bucketing — and the
generic fallback on a filter without an override) plus
``EliasFano.contains_in_range_batch``, asserting element-wise equality
with the scalar loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.engine import ShardedEngine
from repro.engine.batch import route_columnar, validate_batch_bounds
from repro.errors import InvalidQueryError
from repro.filters.base import RangeFilter
from repro.succinct.elias_fano import EliasFano

UNIVERSE = 2**24


class ExactSetFilter(RangeFilter):
    """Minimal filter with *no* batch override: exercises the base-class
    ``may_contain_range_batch`` loop the engine's batch layer falls back
    to for filters without a vectorised fast path."""

    name = "exact-set"

    def __init__(self, keys, universe):
        super().__init__(universe)
        self._keys = np.unique(np.asarray(sorted(keys), dtype=np.uint64))

    @property
    def key_count(self):
        return int(self._keys.size)

    @property
    def size_in_bits(self):
        return int(self._keys.size) * 64

    def may_contain_range(self, lo, hi):
        self._check_range(lo, hi)
        idx = int(np.searchsorted(self._keys, lo, side="left"))
        return idx < self._keys.size and int(self._keys[idx]) <= hi

keys_strategy = st.lists(
    st.integers(0, UNIVERSE - 1), min_size=0, max_size=200
)


def queries_strategy(allow_inverted: bool):
    """Bound pairs mixing random, boundary-hugging and degenerate ranges."""
    bound = st.integers(0, UNIVERSE - 1)
    random_pair = st.tuples(bound, bound)
    boundary = st.sampled_from(
        [
            (0, 0),
            (0, UNIVERSE - 1),
            (UNIVERSE - 1, UNIVERSE - 1),
            (0, 1),
            (UNIVERSE - 2, UNIVERSE - 1),
        ]
    )
    pair = st.one_of(random_pair, boundary)
    if allow_inverted:
        return st.lists(pair, min_size=0, max_size=64)
    return st.lists(
        pair.map(lambda p: (min(p), max(p))), min_size=0, max_size=64
    )


def as_bounds(queries):
    los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
    his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
    return los, his


def assert_batch_equals_scalar(filt, queries):
    los, his = as_bounds(queries)
    batch = filt.may_contain_range_batch(los, his)
    assert batch.dtype == bool and batch.shape == (len(queries),)
    for i, (lo, hi) in enumerate(queries):
        assert batch[i] == filt.may_contain_range(lo, hi), (
            f"{type(filt).__name__}: query {i} [{lo}, {hi}] diverged "
            f"(batch={bool(batch[i])})"
        )


@given(keys=keys_strategy, queries=queries_strategy(False), data=st.data())
@settings(max_examples=60, deadline=None)
def test_grafite_batch_equals_scalar(keys, queries, data):
    bits = data.draw(st.sampled_from([4, 8, 16]))
    max_range = data.draw(st.sampled_from([1, 16, 1024]))
    filt = Grafite(
        keys, UNIVERSE, bits_per_key=bits, max_range_size=max_range, seed=11
    )
    assert_batch_equals_scalar(filt, queries)


@given(keys=keys_strategy, queries=queries_strategy(False), data=st.data())
@settings(max_examples=60, deadline=None)
def test_bucketing_batch_equals_scalar(keys, queries, data):
    bits = data.draw(st.sampled_from([2, 8, 16]))
    filt = Bucketing(keys, UNIVERSE, bits_per_key=bits)
    assert_batch_equals_scalar(filt, queries)


@given(keys=st.lists(st.integers(0, UNIVERSE - 1), max_size=60),
       queries=queries_strategy(False))
@settings(max_examples=30, deadline=None)
def test_generic_batch_fallback_equals_scalar(keys, queries):
    """A filter without a vectorised override uses the base-class loop;
    the engine's batch layer relies on that being exactly equivalent."""
    filt = ExactSetFilter(keys, UNIVERSE)
    assert_batch_equals_scalar(filt, queries)


@given(values=keys_strategy, queries=queries_strategy(True))
@settings(max_examples=60, deadline=None)
def test_elias_fano_batch_equals_scalar(values, queries):
    ef = EliasFano(sorted(set(values)), UNIVERSE)
    los, his = as_bounds(queries)
    batch = ef.contains_in_range_batch(los, his)
    for i, (lo, hi) in enumerate(queries):
        assert batch[i] == ef.contains_in_range(lo, hi), (
            f"EliasFano: query {i} [{lo}, {hi}] diverged"
        )


@given(
    keys=st.lists(st.integers(0, UNIVERSE - 1), max_size=120),
    deletes=st.lists(st.integers(0, UNIVERSE - 1), max_size=20),
    queries=queries_strategy(False),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_engine_columnar_batch_equals_scalar(keys, deletes, queries, data):
    """The whole columnar pipeline — routing plan, straddler expansion,
    vectorised memtable probe, scatter-back — must equal a loop of
    scalar ``range_empty`` calls on any engine state, including shard
    widths narrow enough that random queries straddle boundaries."""
    num_shards = data.draw(st.sampled_from([1, 3, 8]))
    flush = data.draw(st.booleans())
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=num_shards,
        memtable_limit=32,
        compaction_fanout=3,
        filter_factory=lambda ks, u: Grafite(
            ks, u, bits_per_key=8, max_range_size=64, seed=3
        ),
    )
    for key in keys:
        engine.put(key, key & 0xFF)
    for key in deletes:
        engine.delete(key)
    if flush:
        engine.flush_all()
    los, his = as_bounds(queries)
    batch = engine.batch_range_empty(los, his)
    assert batch.dtype == bool and batch.shape == (len(queries),)
    for i, (lo, hi) in enumerate(queries):
        assert batch[i] == engine.range_empty(lo, hi), (
            f"engine({num_shards} shards): query {i} [{lo}, {hi}] diverged"
        )


@given(queries=queries_strategy(False), data=st.data())
@settings(max_examples=40, deadline=None)
def test_columnar_plan_matches_scalar_router(queries, data):
    """``route_columnar``'s segment columns must be exactly the scalar
    router's splits: same (shard, seg_lo, seg_hi) per query, grouped by
    shard with consistent CSR offsets."""
    num_shards = data.draw(st.sampled_from([1, 2, 5, 16]))
    engine_router = ShardedEngine(UNIVERSE, num_shards=num_shards).router
    los, his = validate_batch_bounds(UNIVERSE, *as_bounds(queries))
    plan = route_columnar(engine_router, los, his)
    got = {}
    for g in range(plan.shard_ids.size):
        sid, seg_lo, seg_hi, qid = plan.group(g)
        for j in range(qid.size):
            got.setdefault(int(qid[j]), []).append(
                (sid, int(seg_lo[j]), int(seg_hi[j]))
            )
    for i, (lo, hi) in enumerate(queries):
        want = sorted(engine_router.split(lo, hi))
        assert sorted(got.get(i, [])) == want, f"query {i} [{lo}, {hi}]"
    want_straddlers = {
        i for i, (lo, hi) in enumerate(queries)
        if len(engine_router.split(lo, hi)) > 1
    }
    assert set(plan.straddler_qids.tolist()) == want_straddlers


class TestValidateBatchBounds:
    """Regression: malformed bound columns used to flow straight into
    the uint64 cast — negative ``int64`` values wrapped around to huge
    keys and floats truncated silently, turning caller bugs into wrong
    verdicts instead of errors."""

    def test_rejects_negative_signed_bounds(self):
        los = np.array([-1, 5], dtype=np.int64)
        his = np.array([10, 20], dtype=np.int64)
        with pytest.raises(InvalidQueryError, match="negative bound"):
            validate_batch_bounds(UNIVERSE, los, his)
        with pytest.raises(InvalidQueryError, match="negative bound"):
            validate_batch_bounds(
                UNIVERSE, np.array([0, 5], dtype=np.int64),
                np.array([10, -20], dtype=np.int64),
            )

    def test_rejects_float_columns(self):
        with pytest.raises(InvalidQueryError, match="must be integer"):
            validate_batch_bounds(
                UNIVERSE, np.array([1.5, 2.0]), np.array([3.0, 4.0])
            )

    def test_rejects_object_column_overflow_and_junk(self):
        with pytest.raises(InvalidQueryError):
            validate_batch_bounds(
                UNIVERSE,
                np.array([2**70], dtype=object),
                np.array([2**70 + 1], dtype=object),
            )
        with pytest.raises(InvalidQueryError):
            validate_batch_bounds(
                UNIVERSE,
                np.array(["7"], dtype=object),
                np.array(["9"], dtype=object),
            )
        with pytest.raises(InvalidQueryError):
            validate_batch_bounds(
                UNIVERSE, np.array([-3], dtype=object),
                np.array([9], dtype=object),
            )

    def test_accepts_nonnegative_signed_and_python_ints(self):
        los, his = validate_batch_bounds(
            UNIVERSE, np.array([0, 5], dtype=np.int64), [7, 9]
        )
        assert los.dtype == np.uint64 and his.dtype == np.uint64
        np.testing.assert_array_equal(los, [0, 5])
        np.testing.assert_array_equal(his, [7, 9])

    def test_accepts_empty_columns(self):
        los, his = validate_batch_bounds(UNIVERSE, [], [])
        assert los.size == 0 and los.dtype == np.uint64


def test_empty_batches_are_empty_arrays():
    empty = np.zeros(0, dtype=np.uint64)
    grafite = Grafite([1, 5], UNIVERSE, bits_per_key=8, max_range_size=16)
    bucketing = Bucketing([1, 5], UNIVERSE, bits_per_key=8)
    ef = EliasFano([1, 5], UNIVERSE)
    for result in (
        grafite.may_contain_range_batch(empty, empty),
        bucketing.may_contain_range_batch(empty, empty),
        ef.contains_in_range_batch(empty, empty),
    ):
        assert result.shape == (0,) and result.dtype == bool


@pytest.mark.parametrize("n_keys", [0, 1, 3])
def test_no_false_negatives_on_member_ranges(n_keys):
    """Batch answers must stay superset-correct: a range containing a
    stored key can never come back 'surely empty'."""
    rng = np.random.default_rng(17)
    keys = np.unique(rng.integers(0, UNIVERSE, n_keys, dtype=np.uint64))
    grafite = Grafite(keys, UNIVERSE, bits_per_key=12, max_range_size=64)
    bucketing = Bucketing(keys, UNIVERSE, bits_per_key=12)
    if keys.size == 0:
        return
    los = keys
    his = np.minimum(keys + np.uint64(3), np.uint64(UNIVERSE - 1))
    assert grafite.may_contain_range_batch(los, his).all()
    assert bucketing.may_contain_range_batch(los, his).all()
