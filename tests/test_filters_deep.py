"""Deeper per-filter behaviour tests: internals, invariants, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.filters.bloom import BloomFilter
from repro.filters.point_probe import PointProbeFilter
from repro.filters.proteus import Proteus
from repro.filters.rencoder import REncoder, tree_pattern
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import SnarfFilter
from repro.filters.surf import SuRF


class TestREncoderInternals:
    def test_tree_pattern_encodes_ancestor_closure(self):
        """Marked nodes of leaf s are exactly its ancestors at depths 0..4."""
        for s in range(16):
            pattern = tree_pattern(s)
            for depth in range(5):
                value = s >> (4 - depth)
                node_bit = 1 << ((1 << depth) - 1 + value)
                assert pattern & node_bit, (s, depth)
            # and nothing else is marked
            assert bin(pattern).count("1") == 5

    def test_window_or_read_round_trip_across_words(self):
        f = REncoder([0], 2**16, bits_per_key=4096, stored_levels=1, seed=0)
        # Write patterns at offsets straddling the 64-bit word boundary.
        for offset in (0, 33, 40, 63, 64, 100):
            pattern = 0xA5A5A5A5
            f._or_window(offset, pattern)
            got = f._read_window(offset)
            assert got & pattern == pattern, offset

    def test_recovered_tree_contains_inserted_paths(self):
        universe = 2**16
        keys = [0x1234, 0x1235, 0xFFFF]
        f = REncoder(keys, universe, bits_per_key=400, seed=3)
        for key in keys:
            for level in range(f.stored_levels):
                chunk = (key >> (4 * level)) & 15
                prefix = key >> (4 * (level + 1))
                tree = f._read_tree(prefix, level)
                path = tree_pattern(chunk)
                assert tree & path == path, (hex(key), level)

    def test_point_query_exactness_at_huge_budget(self):
        universe = 2**16
        keys = list(range(0, universe, 997))
        f = REncoder(keys, universe, bits_per_key=2000, seed=1)
        for k in keys:
            assert f.may_contain(k)
        misses = sum(f.may_contain(k + 1) for k in keys if k + 1 not in set(keys))
        assert misses <= 2  # nearly exact when the array is uncrowded


class TestRosettaInternals:
    def test_allocation_spends_budget(self):
        keys = list(range(0, 2**20, 211))
        budget_bpk = 18
        r = Rosetta(keys, 2**20, bits_per_key=budget_bpk, max_range_size=64, seed=0)
        total_budget = budget_bpk * len(keys)
        assert 0.5 * total_budget <= r.size_in_bits <= 1.2 * total_budget

    def test_leaf_level_gets_the_lions_share(self):
        keys = list(range(0, 2**20, 211))
        r = Rosetta(keys, 2**20, bits_per_key=20, max_range_size=64, seed=0)
        leaf = r._blooms[r.levels[-1]]
        for depth in r.levels[:-1]:
            assert leaf.size_in_bits >= r._blooms[depth].size_in_bits

    def test_huge_range_hits_probe_cap_conservatively(self):
        r = Rosetta([5], 2**30, bits_per_key=10, max_range_size=2, max_probes=8, seed=0)
        # Range far wider than the stored levels can decompose: must stay
        # conservative (True), never crash or false-negative.
        assert r.may_contain_range(0, 2**30 - 1)

    def test_weighting_changes_allocation(self):
        keys = list(range(0, 2**16, 37))
        plain = Rosetta(keys, 2**16, bits_per_key=14, max_range_size=16, seed=1)
        sampled = Rosetta(
            keys, 2**16, bits_per_key=14, max_range_size=16, seed=1,
            sample_queries=[(10, 25)] * 32,
        )
        plain_sizes = [plain._blooms[d].size_in_bits for d in plain.levels]
        sampled_sizes = [sampled._blooms[d].size_in_bits for d in sampled.levels]
        assert plain_sizes != sampled_sizes


class TestSurfInternals:
    def test_suffix_bits_cross_byte_boundary(self):
        # 12 suffix bits after a 1-byte prefix in a 16-bit universe: the
        # suffix extends past the key's remaining bits and must pad.
        keys = [0x1200, 0x3400]
        f = SuRF(keys, 2**16, suffix_mode="real", suffix_bits=12, seed=0)
        for k in keys:
            assert f.may_contain(k)

    def test_hash_mode_point_fpr_below_base(self):
        rng = np.random.default_rng(8)
        universe = 2**32
        keys = np.unique(rng.integers(0, universe, 4000, dtype=np.uint64))
        base = SuRF(keys, universe, suffix_mode="none", suffix_bits=0, seed=1)
        hashed = SuRF(keys, universe, suffix_mode="hash", suffix_bits=8, seed=1)
        key_set = set(int(k) for k in keys)
        fp_base = fp_hash = trials = 0
        for k in keys[:1500]:
            probe = int(k) + 1
            if probe in key_set or probe >= universe:
                continue
            trials += 1
            fp_base += base.may_contain(probe)
            fp_hash += hashed.may_contain(probe)
        assert trials > 1000
        # Hashed suffixes are the paper's fix for point queries: the FPR
        # drops by roughly 2^-m versus the truncated-trie baseline.
        assert fp_hash < fp_base / 4

    def test_leaf_min_key_consistency(self):
        keys = [0x11AA, 0x11AB, 0x9000]
        f = SuRF(keys, 2**16, suffix_mode="real", suffix_bits=4, seed=0)
        # The minimal consistent key of each located leaf never exceeds
        # the stored key it represents (otherwise false negatives).
        for k in keys:
            target = int(k).to_bytes(2, "big")
            leaf_id, prefix = f._trie.first_leaf_reaching(target)
            assert f._leaf_min_key(leaf_id, prefix) <= k


class TestProteusInternals:
    def test_probe_cap_is_conservative(self):
        f = Proteus([500], 2**32, bits_per_key=16, l1=8, l2=28, max_probes=4)
        assert f.may_contain_range(0, 2**32 - 1)

    def test_full_key_l2(self):
        keys = [3, 77, 1024]
        f = Proteus(keys, 2**16, bits_per_key=20, l1=8, l2=16)
        for k in keys:
            assert f.may_contain(k)
        assert f.design == (8, 16)

    def test_trie_prunes_exactly_at_l1(self):
        # keys all share the 8-bit prefix 0x12; anything else is pruned
        # by the trie with zero probes to the Bloom filter.
        keys = [0x1200 + i for i in range(10)]
        f = Proteus(keys, 2**16, bits_per_key=24, l1=8, l2=12)
        assert not f.may_contain_range(0x2000, 0x20FF)
        assert not f.may_contain_range(0x0000, 0x11FF)
        assert f.may_contain_range(0x1200, 0x1209)

    @given(st.integers(min_value=0, max_value=2**24 - 1), st.data())
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_explicit_designs(self, key, data):
        l1 = data.draw(st.sampled_from([0, 8, 16]))
        l2 = data.draw(st.sampled_from([12, 20, 24]))
        if not l1 < l2:
            return
        f = Proteus([key], 2**24, bits_per_key=16, l1=l1, l2=l2)
        lo = max(0, key - data.draw(st.integers(0, 20)))
        hi = min(2**24 - 1, key + data.draw(st.integers(0, 20)))
        assert f.may_contain_range(lo, hi)


class TestSnarfInternals:
    def test_spline_is_monotone(self):
        rng = np.random.default_rng(4)
        keys = np.unique(rng.integers(0, 2**40, 3000, dtype=np.uint64))
        f = SnarfFilter(keys, 2**40, K=16)
        probes = np.sort(rng.integers(0, 2**40, 500, dtype=np.uint64))
        mapped = f._map_keys(probes)
        assert bool((np.diff(mapped) >= 0).all())

    def test_extreme_probes_clamped(self):
        keys = [2**20, 2**21]
        f = SnarfFilter(keys, 2**40, K=8)
        assert f._map_scalar(0) >= 0
        assert f._map_scalar(2**40 - 1) <= f._slots - 1

    def test_duplicate_dense_keys(self):
        f = SnarfFilter([5] * 100 + [6], 100, K=4)
        assert f.key_count == 2
        assert f.may_contain(5) and f.may_contain(6)


class TestPointProbeInternals:
    def test_probe_count_scales_with_range(self):
        f = PointProbeFilter([12345], 2**20, eps=0.01, max_range_size=8, seed=0)
        calls = {"n": 0}
        inner = f._bloom

        class CountingBloom:
            def may_contain(self, item):
                calls["n"] += 1
                return inner.may_contain(item)

        f._bloom = CountingBloom()
        f.may_contain_range(0, 63)
        # O(L): one probe per point unless an early hit short-circuits.
        assert calls["n"] == 64


class TestBloomSaturation:
    def test_saturated_filter_stays_correct(self):
        # 64 bits for 10k items: ~everything is a positive, never a FN.
        bf = BloomFilter(64, num_hashes=2, items=list(range(10_000)), seed=0)
        assert all(bf.may_contain(i) for i in range(0, 10_000, 111))
        assert bf.expected_fpr() > 0.99
