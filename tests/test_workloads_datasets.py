"""Tests for the synthetic dataset generators (§6.1 surrogates)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.workloads.datasets import (
    DATASETS,
    books_like,
    fb_like,
    load_dataset,
    normal,
    osm_like,
    uniform,
)


@pytest.mark.parametrize("name", sorted(DATASETS))
class TestCommonProperties:
    def test_sorted_unique_in_universe(self, name):
        keys = load_dataset(name, 2000, universe=2**48, seed=1)
        assert keys.dtype == np.uint64
        assert keys.size > 0
        assert bool((np.diff(keys.astype(np.int64)) > 0).all())
        assert int(keys.max()) < 2**48

    def test_deterministic(self, name):
        a = load_dataset(name, 500, universe=2**40, seed=7)
        b = load_dataset(name, 500, universe=2**40, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self, name):
        a = load_dataset(name, 500, universe=2**40, seed=1)
        b = load_dataset(name, 500, universe=2**40, seed=2)
        assert not np.array_equal(a, b)

    def test_requested_count_close(self, name):
        keys = load_dataset(name, 3000, universe=2**60, seed=3)
        assert 0.9 * 3000 <= keys.size <= 3000


class TestValidation:
    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("nope", 10)

    def test_bad_n(self):
        with pytest.raises(InvalidParameterError):
            uniform(0)

    def test_n_exceeds_universe(self):
        with pytest.raises(InvalidParameterError):
            uniform(100, universe=10)

    def test_exact_count_for_uniform(self):
        assert uniform(1234, universe=2**40, seed=0).size == 1234


class TestDistributionShapes:
    def test_books_has_heavy_tail_gaps(self):
        keys = books_like(5000, universe=2**50, seed=0).astype(np.float64)
        gaps = np.diff(keys)
        # Heavy tail: the max gap dwarfs the median gap.
        assert gaps.max() > 50 * np.median(gaps)

    def test_osm_is_clustered(self):
        keys = osm_like(5000, universe=2**50, seed=0).astype(np.float64)
        gaps = np.diff(keys)
        # Clustering: most gaps are tiny relative to the mean.
        assert np.median(gaps) < np.mean(gaps) / 10

    def test_fb_bulk_below_2_38(self):
        keys = fb_like(2000, seed=0)
        below = int(np.sum(keys < 2**38))
        assert below >= keys.size - 21

    def test_normal_concentrates_near_mean(self):
        u = 2**40
        keys = normal(5000, universe=u, seed=0).astype(np.float64)
        inside = np.sum(np.abs(keys - u / 2) < 0.2 * u)
        assert inside / keys.size > 0.9
