"""Tests for the YCSB-style scenario matrix (ISSUE 9 tentpole).

The registry is declarative data; the driver is the code under test.
The heavyweight differential guarantees live in the driver itself
(every probe/scan/get checked against :class:`ScenarioOracle` at drain
time, final state bit-exact), so these tests (a) pin the registry's
shape, (b) pin the op-stream generator's determinism, (c) run the
matrix at small scale through every serving mode, and (d) smoke the
``scenarios`` CLI subcommand end to end.
"""

import io
from contextlib import redirect_stdout
from dataclasses import asdict

import pytest

from repro.errors import InvalidParameterError
from repro.workloads.scenarios import (
    MODES,
    SCENARIOS,
    Scenario,
    ScenarioOracle,
    TTLConfig,
    get_scenario,
    register_scenario,
    run_matrix,
    run_scenario,
    scenario_names,
    scenario_ops,
    scenario_preload,
)

SEED = 20240731


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_issue_required_scenarios_present(self):
        names = scenario_names()
        for required in (
            "read-heavy", "scan-heavy", "update-heavy",
            "adversarial", "string-keys", "ttl-expiry",
        ):
            assert required in names
        assert len(names) >= 6

    def test_specs_validate(self):
        for name in scenario_names():
            get_scenario(name).validate()

    def test_mix_needs_a_positive_weight(self):
        # Weights are normalized by the generator; what's rejected is a
        # mix with no mass at all.
        for mix in ({}, {"probe": 0.0}):
            bad = Scenario(name="bad-mix", description="x", mix=mix)
            with pytest.raises(InvalidParameterError):
                bad.validate()

    def test_unknown_op_class_rejected(self):
        bad = Scenario(
            name="bad-op", description="x",
            mix={"probe": 0.5, "frobnicate": 0.5},
        )
        with pytest.raises(InvalidParameterError):
            bad.validate()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_scenario(get_scenario("read-heavy"))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_scenario("no-such-scenario")

    def test_mode_support(self):
        # Scans, TTL, strings and the adversary all need a local engine.
        assert "net" not in get_scenario("string-keys").modes()
        assert "net" not in get_scenario("ttl-expiry").modes()
        assert "net" not in get_scenario("adversarial").modes()
        assert "net" in get_scenario("net-mixed").modes()
        for name in scenario_names():
            assert set(get_scenario(name).modes()) <= set(MODES)

    def test_ttl_config_validates(self):
        with pytest.raises(InvalidParameterError):
            TTLConfig(expire_fraction=1.5).validate()
        with pytest.raises(InvalidParameterError):
            TTLConfig(lifetime=(10, 4)).validate()


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
class TestScenarioOracle:
    def test_basic_contract(self):
        oracle = ScenarioOracle()
        oracle.put(5, b"a")
        oracle.put(9, b"b")
        oracle.delete(5)
        assert oracle.get(5) is None and oracle.get(9) == b"b"
        assert oracle.range_empty(0, 8) and not oracle.range_empty(0, 9)
        assert oracle.items() == [(9, b"b")]

    def test_ttl_expiry_is_exact(self):
        oracle = ScenarioOracle()
        oracle.put(1, b"immortal")
        oracle.put(2, b"doomed", expires_at=10)
        assert oracle.get(2) == b"doomed"
        oracle.advance(9)
        assert oracle.get(2) == b"doomed"  # expires_at is exclusive-live
        oracle.advance(10)
        assert oracle.get(2) is None
        assert oracle.range_empty(2, 2)
        assert oracle.items() == [(1, b"immortal")]
        assert oracle.live_keys() == [1]

    def test_overwrite_clears_deadline(self):
        oracle = ScenarioOracle()
        oracle.put(1, b"v1", expires_at=5)
        oracle.put(1, b"v2")
        oracle.advance(100)
        assert oracle.get(1) == b"v2"

    def test_scan_excludes_expired(self):
        oracle = ScenarioOracle()
        oracle.put(1, b"a", expires_at=2)
        oracle.put(3, b"b")
        oracle.advance(2)
        assert oracle.scan(0, 10) == [(3, b"b")]


# ----------------------------------------------------------------------
# Op streams
# ----------------------------------------------------------------------
class TestOpStreams:
    def test_deterministic_given_seed(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            a = list(scenario_ops(scenario, SEED, n_ops=300))
            b = list(scenario_ops(scenario, SEED, n_ops=300))
            assert a == b
            assert scenario_preload(scenario, SEED) == scenario_preload(
                scenario, SEED
            )

    def test_seed_changes_stream(self):
        scenario = get_scenario("read-heavy")
        a = list(scenario_ops(scenario, SEED, n_ops=300))
        b = list(scenario_ops(scenario, SEED + 1, n_ops=300))
        assert a != b

    def test_mix_is_respected(self):
        scenario = get_scenario("update-heavy")
        ops = list(scenario_ops(scenario, SEED, n_ops=2000))
        counts = {kind: 0 for kind in ("probe", "insert", "delete", "scan")}
        for op in ops:
            if op[0] in counts:
                counts[op[0]] += 1
        total = sum(counts.values())
        for kind, share in scenario.mix.items():
            if share:
                assert abs(counts[kind] / total - share) < 0.05, (
                    f"{kind}: {counts[kind] / total:.3f} vs declared {share}"
                )

    def test_ttl_stream_carries_ticks_and_deadlines(self):
        scenario = get_scenario("ttl-expiry")
        ops = list(scenario_ops(scenario, SEED, n_ops=500))
        ticks = [op for op in ops if op[0] == "tick"]
        assert ticks, "TTL scenario produced no clock ticks"
        nows = [op[1] for op in ticks]
        assert nows == sorted(nows) and len(set(nows)) == len(nows)
        deadlines = [op[3] for op in ops if op[0] == "insert" and op[3] is not None]
        assert deadlines, "TTL scenario stamped no deadlines"

    def test_string_scenario_emits_storable_keys(self):
        scenario = get_scenario("string-keys")
        width = scenario.key_width
        for op in scenario_ops(scenario, SEED, n_ops=400):
            if op[0] in ("insert", "delete"):
                assert isinstance(op[1], str) and 1 <= len(op[1]) <= width


# ----------------------------------------------------------------------
# The matrix (small scale; the full gated sweep lives in the benchmark)
# ----------------------------------------------------------------------
def _assert_ok(report):
    assert report.ok, (
        f"{report.scenario}/{report.mode} diverged: "
        f"{report.mismatches} mismatches, final_match={report.final_match}, "
        f"samples={report.mismatch_samples[:5]}"
    )
    assert report.checks > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_on_engine(name):
    _assert_ok(run_scenario(name, mode="engine", seed=SEED, scale=0.25))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_on_service(name):
    _assert_ok(run_scenario(
        name, mode="service", seed=SEED, num_threads=4, scale=0.25,
    ))


def test_persistent_mode_with_crash_reopen():
    """The persistent mode reopens mid-stream (crash-style, WAL replay)
    and still finishes bit-exact — strings included."""
    _assert_ok(run_scenario(
        "string-keys", mode="persistent", seed=SEED, scale=0.25,
    ))
    _assert_ok(run_scenario(
        "ttl-expiry", mode="persistent", seed=SEED, scale=0.25,
    ))


def test_process_mode_spot_check():
    _assert_ok(run_scenario(
        "read-heavy", mode="service-process", seed=SEED,
        num_threads=2, scale=0.25,
    ))


def test_net_mode_spot_check():
    _assert_ok(run_scenario(
        "net-mixed", mode="net", seed=SEED, num_threads=2, scale=0.25,
    ))


def test_adversary_epilogue_reports_rounds():
    report = run_scenario("adversarial", mode="engine", seed=SEED, scale=0.25)
    _assert_ok(report)
    assert report.adversary is not None
    assert report.adversary["rounds"] >= 1


def test_ttl_scenario_actually_expires():
    report = run_scenario("ttl-expiry", mode="engine", seed=SEED, scale=0.25)
    _assert_ok(report)
    assert report.ttl_now > 0
    # Deadlines fired mid-stream: the surviving set is strictly smaller
    # than everything ever written (preload of 500 keys at this scale).
    assert report.live_keys < 500 + report.counts["insert"]


def test_run_matrix_skips_unsupported_modes():
    reports = run_matrix(["string-keys"], ["engine", "net"], seed=SEED, scale=0.25)
    assert [r.mode for r in reports] == ["engine"]


def test_report_round_trips_to_dict():
    report = run_scenario("read-heavy", mode="engine", seed=SEED, scale=0.25)
    data = report.to_dict()
    assert data["ok"] is True and data["scenario"] == "read-heavy"
    assert set(asdict(report)) <= set(data)


def test_scale_and_mode_validation():
    with pytest.raises(InvalidParameterError):
        run_scenario("read-heavy", mode="blimp")
    with pytest.raises(InvalidParameterError):
        run_scenario("string-keys", mode="net")
    with pytest.raises(InvalidParameterError):
        run_scenario("read-heavy", scale=0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestScenariosCommand:
    def run_cli(self, argv):
        from repro.cli import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(argv)
        return code, buffer.getvalue()

    def test_list(self):
        code, out = self.run_cli(["scenarios", "--list"])
        assert code == 0
        for name in scenario_names():
            assert name in out

    def test_runs_and_summarises(self):
        code, out = self.run_cli([
            "scenarios", "read-heavy", "--mode", "engine",
            "--seed", "7", "--scale", "0.1",
        ])
        assert code == 0
        assert "[scenarios] scenario=read-heavy mode=engine" in out
        assert "ok=true" in out and "failures=0" in out

    def test_unknown_scenario_exits_2(self):
        code, _ = self.run_cli(["scenarios", "no-such", "--scale", "0.1"])
        assert code == 2

    def test_unknown_mode_exits_2(self):
        code, _ = self.run_cli(
            ["scenarios", "read-heavy", "--mode", "blimp"]
        )
        assert code == 2
