"""Failure injection: malformed inputs and hostile parameters.

A production library's error paths are part of its API: every rejection
here must be a library exception (never a bare TypeError/IndexError from
deep inside numpy), and every accepted boundary value must not corrupt
later answers.
"""

import numpy as np
import pytest

from repro import (
    Bucketing,
    DynamicGrafite,
    Grafite,
    HybridGrafiteBucketing,
    InvalidKeyError,
    InvalidParameterError,
    InvalidQueryError,
    ReproError,
    StringGrafite,
)
from repro.filters.base import as_key_array
from repro.succinct.elias_fano import EliasFano


class TestKeyValidation:
    def test_keys_above_universe_rejected(self):
        with pytest.raises(InvalidKeyError):
            Grafite([100], 100, eps=0.1)

    def test_negative_keys_rejected(self):
        with pytest.raises(ReproError):
            Grafite([-1], 100, eps=0.1)

    def test_non_integer_keys_rejected(self):
        with pytest.raises(ReproError):
            as_key_array(["a", "b"], 100)

    def test_two_dimensional_keys_rejected(self):
        with pytest.raises(InvalidKeyError):
            as_key_array(np.zeros((2, 2), dtype=np.uint64), 100)

    def test_float_keys_with_integral_values_accepted_by_numpy_cast(self):
        # numpy silently casts float arrays; the library must still
        # produce correct answers for integral floats.
        g = Grafite(np.array([1.0, 5.0]), 100, eps=0.5, seed=0)
        assert g.may_contain(1) and g.may_contain(5)

    def test_zero_universe_rejected_everywhere(self):
        for ctor in (
            lambda: Grafite([1], 0, eps=0.1),
            lambda: Bucketing([1], 0, bucket_size=1),
            lambda: DynamicGrafite(10, 0, eps=0.1),
        ):
            with pytest.raises(ReproError):
                ctor()


class TestParameterBoundaries:
    def test_eps_exactly_one_accepted(self):
        # eps = 1 is degenerate but legal: the filter may answer True always.
        g = Grafite(list(range(64)), 2**20, eps=1.0, max_range_size=1, seed=0)
        for k in range(0, 64, 7):
            assert g.may_contain(k)

    def test_tiny_eps_huge_L_goes_exact(self):
        g = Grafite([5], 2**16, eps=1e-300, max_range_size=2**15, seed=0)
        assert g.is_exact

    def test_universe_of_two(self):
        g = Grafite([0, 1], 2, eps=0.5, max_range_size=1, seed=0)
        assert g.may_contain(0) and g.may_contain(1)

    def test_single_key_single_value_universe_range(self):
        b = Bucketing([0], 1, bucket_size=1)
        assert b.may_contain_range(0, 0)

    def test_max_range_size_one(self):
        g = Grafite([7], 100, eps=0.1, max_range_size=1, seed=0)
        assert g.may_contain_range(7, 7)
        # queries wider than L are legal, just weaker:
        assert isinstance(g.may_contain_range(0, 99), bool)

    def test_bits_per_key_fractional(self):
        g = Grafite(list(range(100)), 2**30, bits_per_key=7.5, max_range_size=8, seed=0)
        assert g.bits_per_key < 10


class TestQueryValidation:
    @pytest.mark.parametrize(
        "bad_range", [(-1, 5), (5, 2**40), (9, 3)]
    )
    def test_bad_ranges_raise_library_errors(self, bad_range):
        g = Grafite([10], 2**40, eps=0.1, seed=0)
        with pytest.raises(InvalidQueryError):
            g.may_contain_range(*bad_range)

    def test_count_range_validates_too(self):
        g = Grafite([10], 2**20, eps=0.1, seed=0)
        with pytest.raises(InvalidQueryError):
            g.count_range(9, 3)

    def test_string_filter_inverted_range(self):
        f = StringGrafite(["m"], eps=0.5, seed=0)
        with pytest.raises(InvalidQueryError):
            f.may_contain_range("z", "a")


class TestEliasFanoEdges:
    def test_universe_one(self):
        ef = EliasFano([0, 0, 0], universe=1)
        assert list(ef) == [0, 0, 0]
        assert ef.predecessor(0) == 0

    def test_single_huge_value(self):
        v = 2**63
        ef = EliasFano([v], universe=2**64)
        assert ef.predecessor(2**64 - 1) == v
        assert ef.successor(0) == v

    def test_probe_beyond_last(self):
        ef = EliasFano([5], universe=2**20)
        assert ef.predecessor(2**20 - 1) == 5
        assert ef.successor(6) is None


class TestHybridAndDynamicEdges:
    def test_hybrid_single_key(self):
        f = HybridGrafiteBucketing([42], 2**20, bits_per_key=12, seed=0)
        assert f.may_contain(42)
        assert f.key_count == 1

    def test_dynamic_duplicate_inserts(self):
        d = DynamicGrafite(100, 2**20, eps=0.1, buffer_size=4, seed=0)
        for _ in range(20):
            d.insert(7)
        assert d.may_contain(7)
        # duplicates collapse inside the runs; space stays bounded
        d.compact()
        assert d.run_count == 1

    def test_dynamic_insert_at_universe_edges(self):
        d = DynamicGrafite(10, 2**20, eps=0.1, seed=0)
        d.insert(0)
        d.insert(2**20 - 1)
        assert d.may_contain(0)
        assert d.may_contain(2**20 - 1)


class TestAnswerStabilityAfterErrors:
    def test_rejected_query_does_not_corrupt_state(self):
        g = Grafite([500], 1000, eps=0.1, max_range_size=4, seed=0)
        with pytest.raises(InvalidQueryError):
            g.may_contain_range(-5, 5)
        assert g.may_contain(500)

    def test_rejected_insert_does_not_corrupt_dynamic(self):
        d = DynamicGrafite(10, 1000, eps=0.1, seed=0)
        d.insert(5)
        with pytest.raises(InvalidKeyError):
            d.insert(1000)
        assert d.key_count == 1
        assert d.may_contain(5)
