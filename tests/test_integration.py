"""Cross-module integration tests: harness, datasets, workloads, filters.

These are miniature end-to-end versions of the benchmark experiments:
every registered filter on every dataset family, FPR trends over space
budgets, and ground-truth-checked measurement (no false negatives from
any filter on any workload kind).
"""

import pickle

import numpy as np
import pytest

from repro.analysis.fpr import measure_fpr, measure_fpr_checked
from repro.analysis.harness import FILTERS, FilterConfig, build_filter, run_grid
from repro.workloads.datasets import DATASETS, load_dataset
from repro.workloads.queries import (
    correlated_queries,
    nonempty_queries,
    real_extracted_queries,
    uncorrelated_queries,
)

UNIVERSE = 2**40
N_KEYS = 1200
N_QUERIES = 60
RANGE = 16


def config_for(keys, bpk=16):
    sample = uncorrelated_queries(16, RANGE, UNIVERSE, keys=keys, seed=99)
    return FilterConfig(
        keys=keys, universe=UNIVERSE, bits_per_key=bpk,
        max_range_size=RANGE, sample_queries=sample, seed=0,
    )


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
@pytest.mark.parametrize("filter_name", sorted(FILTERS))
def test_every_filter_on_every_dataset(dataset_name, filter_name):
    keys = load_dataset(dataset_name, N_KEYS, universe=UNIVERSE, seed=5)
    filt = build_filter(filter_name, config_for(keys))
    # Mixed workload with ground truth: never a false negative.
    empties = uncorrelated_queries(N_QUERIES, RANGE, UNIVERSE, keys=keys, seed=6)
    fulls = nonempty_queries(keys, N_QUERIES, RANGE, UNIVERSE, seed=7)
    result = measure_fpr_checked(filt, empties + fulls, keys)
    assert result.false_negatives == 0, (dataset_name, filter_name)
    assert result.true_positives == N_QUERIES


class TestGrafiteTrends:
    def test_fpr_decreases_with_budget(self):
        keys = load_dataset("uniform", 4000, universe=UNIVERSE, seed=1)
        queries = correlated_queries(
            keys, 400, RANGE, UNIVERSE, correlation_degree=0.9, seed=2
        )
        fprs = []
        for bpk in (6, 10, 14, 18):
            filt = build_filter("Grafite", config_for(keys, bpk))
            fprs.append(measure_fpr(filt, queries).fpr)
        assert fprs[0] >= fprs[-1]
        assert fprs[-1] <= 0.02

    def test_fpr_scales_with_range_size(self):
        """Corollary 3.5: FPR proportional to the queried range size."""
        keys = load_dataset("uniform", 4000, universe=UNIVERSE, seed=3)
        filt = build_filter("Grafite", config_for(keys, 10))
        small = measure_fpr(
            filt, uncorrelated_queries(2000, 2, UNIVERSE, keys=keys, seed=4)
        ).fpr
        large = measure_fpr(
            filt, uncorrelated_queries(2000, 64, UNIVERSE, keys=keys, seed=5)
        ).fpr
        # 32x the range -> about 32x the FPR (allow generous noise).
        assert large >= 4 * small or small == 0


class TestWorkloadRound:
    def test_real_extracted_flows_through_harness(self):
        keys = load_dataset("books", 2000, universe=UNIVERSE, seed=8)
        remaining, queries = real_extracted_queries(keys, 50, RANGE, UNIVERSE, seed=9)
        rows = run_grid(
            ["Grafite", "Bucketing"], config_for(remaining), queries,
            dataset="books", workload="real",
        )
        assert {r.filter_name for r in rows} == {"Grafite", "Bucketing"}
        for row in rows:
            assert 0.0 <= row.fpr <= 1.0
            assert row.key_count == remaining.size


@pytest.mark.parametrize("filter_name", sorted(FILTERS))
def test_filters_pickle_round_trip(filter_name):
    keys = load_dataset("uniform", 400, universe=UNIVERSE, seed=10)
    filt = build_filter(filter_name, config_for(keys))
    clone = pickle.loads(pickle.dumps(filt))
    rng = np.random.default_rng(11)
    probes = [(int(x), int(x) + RANGE - 1) for x in rng.integers(0, UNIVERSE - RANGE, 40, dtype=np.uint64)]
    probes += [(int(k), int(k)) for k in keys[:20]]
    for lo, hi in probes:
        assert clone.may_contain_range(lo, hi) == filt.may_contain_range(lo, hi)
