"""Tests for the Bucketing heuristic filter (paper §4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketing import Bucketing
from repro.errors import InvalidParameterError, InvalidQueryError


class TestConstruction:
    def test_requires_exactly_one_knob(self):
        with pytest.raises(InvalidParameterError):
            Bucketing([1], 100)
        with pytest.raises(InvalidParameterError):
            Bucketing([1], 100, bucket_size=2, bits_per_key=8)

    def test_invalid_bucket_size(self):
        with pytest.raises(InvalidParameterError):
            Bucketing([1], 100, bucket_size=0)

    def test_invalid_budget(self):
        with pytest.raises(InvalidParameterError):
            Bucketing([1], 100, bits_per_key=0)

    def test_empty_keys(self):
        b = Bucketing([], 1000, bucket_size=10)
        assert b.key_count == 0
        assert not b.may_contain_range(0, 999)

    def test_bucket_size_one_is_lossless(self):
        keys = [3, 17, 999]
        b = Bucketing(keys, 1000, bucket_size=1)
        assert b.marked_buckets == 3
        for k in keys:
            assert b.may_contain(k)
        assert not b.may_contain_range(4, 16)
        assert not b.may_contain_range(18, 998)

    def test_marked_bucket_count(self):
        # keys 0..9 with s=5 -> buckets {0, 1}
        b = Bucketing(range(10), 100, bucket_size=5)
        assert b.marked_buckets == 2
        assert b.bucket_size == 5

    def test_budget_fit_shrinks_space(self):
        rng = np.random.default_rng(0)
        keys = np.unique(rng.integers(0, 2**40, 2000, dtype=np.uint64))
        tight = Bucketing(keys, 2**40, bits_per_key=6)
        loose = Bucketing(keys, 2**40, bits_per_key=30)
        assert tight.bits_per_key <= 6 + 1e-9
        assert tight.bucket_size >= loose.bucket_size
        assert loose.bits_per_key <= 30 + 1e-9


class TestQueries:
    def test_query_validation(self):
        b = Bucketing([5], 100, bucket_size=2)
        with pytest.raises(InvalidQueryError):
            b.may_contain_range(5, 3)
        with pytest.raises(InvalidQueryError):
            b.may_contain_range(0, 100)

    def test_false_positive_within_bucket(self):
        # key 7 marks bucket [0, 9]; empty query [8, 9] is a false positive
        b = Bucketing([7], 100, bucket_size=10)
        assert b.may_contain_range(8, 9)
        assert not b.may_contain_range(10, 19)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6 - 1), min_size=1, max_size=100),
        st.sampled_from([1, 2, 7, 64, 1000]),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_false_negatives_property(self, keys, bucket_size, data):
        b = Bucketing(keys, 10**6, bucket_size=bucket_size)
        for key in keys[:10]:
            span = data.draw(st.integers(min_value=0, max_value=500))
            lo = max(0, key - span)
            hi = min(10**6 - 1, key + span)
            assert b.may_contain_range(lo, hi)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6 - 1), min_size=1, max_size=50),
        st.sampled_from([4, 32]),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bucket_semantics_exactly(self, keys, bucket_size, data):
        """Bucketing's answer equals the exact bucket-occupancy predicate."""
        b = Bucketing(keys, 10**6, bucket_size=bucket_size)
        marked = {k // bucket_size for k in keys}
        lo = data.draw(st.integers(min_value=0, max_value=10**6 - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=min(10**6 - 1, lo + 10_000)))
        expected = any(lo // bucket_size <= m <= hi // bucket_size for m in marked)
        assert b.may_contain_range(lo, hi) == expected
