"""Tests for the Grafite range filter (paper §3).

The central law — *no false negatives, ever* — is checked both on curated
edge cases and via hypothesis over random key sets, query mixes, block
boundaries, and both constructor flavours.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grafite import Grafite, eps_from_bits_per_key
from repro.errors import InvalidParameterError, InvalidQueryError


def brute_force_intersects(keys, lo, hi):
    return any(lo <= k <= hi for k in keys)


class TestConstruction:
    def test_requires_exactly_one_budget_knob(self):
        with pytest.raises(InvalidParameterError):
            Grafite([1, 2], 100)
        with pytest.raises(InvalidParameterError):
            Grafite([1, 2], 100, eps=0.1, bits_per_key=10)

    def test_invalid_eps(self):
        with pytest.raises(InvalidParameterError):
            Grafite([1], 100, eps=0.0)

    def test_invalid_range_size(self):
        with pytest.raises(InvalidParameterError):
            Grafite([1], 100, eps=0.5, max_range_size=0)

    def test_eps_from_bits_per_key(self):
        # B bits/key buys eps = L / 2^(B-2)  (Corollary 3.5 derivation).
        assert eps_from_bits_per_key(12, 32) == 32 / 2**10
        with pytest.raises(InvalidParameterError):
            eps_from_bits_per_key(2, 32)

    def test_empty_key_set(self):
        g = Grafite([], 1000, eps=0.1)
        assert g.key_count == 0
        assert not g.may_contain_range(0, 999)
        assert g.count_range(0, 999) == 0

    def test_duplicates_collapsed(self):
        g = Grafite([5, 5, 5, 9], 100, eps=0.1, max_range_size=2, seed=0)
        assert g.key_count == 2

    def test_exact_mode_engages_when_r_exceeds_universe(self):
        # n*L/eps = 10*32/0.001 >> u = 1000 -> lossless EF encoding.
        g = Grafite(range(0, 1000, 100), 1000, eps=0.001, max_range_size=32, seed=0)
        assert g.is_exact
        assert g.fpr_bound(32) == 0.0
        assert g.may_contain_range(100, 100)
        assert not g.may_contain_range(101, 199)

    def test_reduced_universe_value(self):
        g = Grafite(range(100), 2**40, eps=0.5, max_range_size=16, seed=0)
        assert g.reduced_universe == 100 * 16 * 2  # ceil(n L / eps)
        assert not g.is_exact

    def test_power_of_two_universe(self):
        g = Grafite(
            range(100), 2**40, eps=0.5, max_range_size=16, seed=0,
            power_of_two_universe=True,
        )
        r = g.reduced_universe
        assert r & (r - 1) == 0  # power of two

    def test_deterministic_under_seed(self):
        keys = list(range(0, 10_000, 7))
        g1 = Grafite(keys, 2**40, eps=0.01, seed=123)
        g2 = Grafite(keys, 2**40, eps=0.01, seed=123)
        queries = [(3, 5), (70, 700), (9999, 20_000)]
        assert [g1.may_contain_range(a, b) for a, b in queries] == [
            g2.may_contain_range(a, b) for a, b in queries
        ]

    def test_space_close_to_bound(self):
        """Theorem 3.4: space <= n log2(L/eps) + 2n + o(n)."""
        rng = np.random.default_rng(0)
        keys = np.unique(rng.integers(0, 2**50, 5000, dtype=np.uint64))
        L, eps = 64, 0.01
        g = Grafite(keys, 2**50, eps=eps, max_range_size=L, seed=1)
        n = g.key_count
        bound = n * np.log2(L / eps) + 2 * n
        # allow o(n) slack: one extra bit per key plus word padding
        assert g.size_in_bits <= bound + n + 128


class TestQueries:
    def test_query_validation(self):
        g = Grafite([10], 100, eps=0.5, seed=0)
        with pytest.raises(InvalidQueryError):
            g.may_contain_range(5, 3)
        with pytest.raises(InvalidQueryError):
            g.may_contain_range(0, 100)
        with pytest.raises(InvalidQueryError):
            g.may_contain_range(-1, 3)

    def test_point_queries_on_keys_always_hit(self):
        keys = [0, 17, 999_999]
        g = Grafite(keys, 10**6, eps=0.01, seed=4)
        for k in keys:
            assert g.may_contain(k)

    def test_huge_range_returns_true(self):
        g = Grafite([50], 10**6, eps=0.9, max_range_size=1, seed=0)
        # range size >= r -> hashed image covers [r] -> must answer True
        assert g.may_contain_range(0, 10**6 - 1)

    def test_no_false_negatives_across_block_boundaries(self):
        """Keys placed right at multiples of r exercise Footnote 2."""
        g = Grafite(range(100), 2**30, eps=0.5, max_range_size=8, seed=7)
        r = g.reduced_universe
        boundary_keys = [r - 1, r, r + 1, 2 * r, 5 * r - 1, 5 * r]
        g2 = Grafite(boundary_keys, 2**30, eps=0.5, max_range_size=8, seed=7)
        for k in boundary_keys:
            assert g2.may_contain_range(max(0, k - 3), k + 3)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=80),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_no_false_negatives_property(self, keys, data):
        universe = 2**32
        eps = data.draw(st.sampled_from([0.01, 0.1, 0.5, 0.9]))
        L = data.draw(st.sampled_from([1, 2, 32, 1024]))
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        g = Grafite(keys, universe, eps=eps, max_range_size=L, seed=seed)
        # ranges anchored on keys, shifted around them, in both directions
        for key in keys[:10]:
            width = data.draw(st.integers(min_value=0, max_value=2 * L))
            lo = max(0, key - data.draw(st.integers(min_value=0, max_value=width)))
            hi = min(universe - 1, lo + width)
            if lo <= key <= hi:
                assert g.may_contain_range(lo, hi), (
                    f"false negative: key {key} in [{lo}, {hi}]"
                )

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_bits_per_key_constructor_no_false_negatives(self, data):
        keys = data.draw(
            st.lists(st.integers(min_value=0, max_value=2**24 - 1), min_size=1, max_size=60)
        )
        bpk = data.draw(st.sampled_from([6, 10, 16, 24]))
        g = Grafite(keys, 2**24, bits_per_key=bpk, max_range_size=16, seed=0)
        for key in keys:
            lo, hi = max(0, key - 7), min(2**24 - 1, key + 8)
            assert g.may_contain_range(lo, hi)

    def test_fpr_within_bound_statistically(self):
        """Empirical FPR on disjoint ranges stays near the eps bound."""
        rng = np.random.default_rng(42)
        universe = 2**40
        keys = np.unique(rng.integers(0, universe, 20_000, dtype=np.uint64))
        L, eps = 16, 0.05
        g = Grafite(keys, universe, eps=eps, max_range_size=L, seed=3)
        key_set = set(int(k) for k in keys)
        trials, false_positives = 0, 0
        while trials < 4000:
            a = int(rng.integers(0, universe - L))
            rng_keys = [k for k in range(a, a + L) if k in key_set]
            if rng_keys:
                continue
            trials += 1
            if g.may_contain_range(a, a + L - 1):
                false_positives += 1
        fpr = false_positives / trials
        assert fpr <= eps * 1.8 + 0.01, f"FPR {fpr} far above design eps {eps}"

    def test_fpr_bound_function(self):
        g = Grafite(range(100), 2**40, eps=0.1, max_range_size=10, seed=0)
        assert g.fpr_bound(10) == pytest.approx(100 * 10 / g.reduced_universe)
        assert g.fpr_bound(10**12) == 1.0


class TestCounting:
    def test_exact_mode_counts_exactly(self):
        keys = [10, 20, 30, 40]
        g = Grafite(keys, 1000, eps=1e-9, max_range_size=4, seed=0)
        assert g.is_exact
        assert g.count_range(15, 35) == 2
        assert g.count_range(0, 9) == 0
        assert g.count_range(10, 40) == 4

    def test_count_never_below_truth_minus_collisions(self):
        rng = np.random.default_rng(1)
        universe = 2**40
        keys = np.unique(rng.integers(0, universe, 5000, dtype=np.uint64))
        g = Grafite(keys, universe, eps=0.01, max_range_size=64, seed=2)
        sorted_keys = np.sort(keys)
        for _ in range(200):
            a = int(rng.integers(0, universe - 64))
            b = a + 63
            truth = int(
                np.searchsorted(sorted_keys, b, "right")
                - np.searchsorted(sorted_keys, a, "left")
            )
            estimate = g.count_range(a, b)
            # The raw estimate only misses keys whose codes collided.
            assert estimate >= truth - 5
            assert estimate <= truth + 50

    def test_adjusted_count_non_negative(self):
        g = Grafite(range(1000), 2**30, eps=0.5, max_range_size=8, seed=0)
        assert g.count_range(2**20, 2**20 + 7, adjusted=True) >= 0

    def test_count_whole_universe(self):
        g = Grafite(range(50), 10**4, eps=0.9, max_range_size=2, seed=0)
        if not g.is_exact:
            assert g.count_range(0, 10**4 - 1) == g.key_count


class TestPickling:
    def test_round_trip(self):
        keys = list(range(0, 5000, 3))
        g = Grafite(keys, 2**30, eps=0.05, max_range_size=32, seed=9)
        clone = pickle.loads(pickle.dumps(g))
        queries = [(0, 10), (4997, 5100), (2**29, 2**29 + 31)]
        assert [clone.may_contain_range(a, b) for a, b in queries] == [
            g.may_contain_range(a, b) for a, b in queries
        ]
        assert clone.size_in_bits == g.size_in_bits
