"""Filter backend registry + heterogeneous-backend engine tests.

Covers the three legs the registry stands on:

* every backend builds from a :class:`FilterSpec`, answers with zero
  false negatives, and rides the generic batch API;
* every backend serialises to a stable byte format and restores
  byte-for-byte (same sizes, same verdicts, identical re-serialisation);
* the engine mounts any backend, snapshots its filters as blobs, and
  reopens them without a factory — including the
  :class:`~repro.errors.ConfigError` guard for runs whose filters
  *cannot* come back.
"""

import numpy as np
import pytest

from repro.core.serialization import filter_from_bytes, filter_to_bytes
from repro.engine import ShardedEngine
from repro.errors import ConfigError, InvalidParameterError
from repro.filters.registry import BACKENDS, FilterSpec, backend_names, make_factory

UNIVERSE = 2**28
SEED = 11


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(SEED)
    return np.unique(rng.integers(0, UNIVERSE, 3000, dtype=np.uint64))


@pytest.fixture(scope="module")
def probe_bounds(keys):
    rng = np.random.default_rng(SEED + 1)
    los = rng.integers(0, UNIVERSE - 128, 800, dtype=np.uint64)
    his = los + rng.integers(0, 128, 800, dtype=np.uint64)
    return los, his


def test_backend_names_match_issue_contract():
    assert backend_names() == sorted(
        ["grafite", "bucketing", "surf", "rosetta", "proteus", "snarf", "rencoder"]
    )


def test_spec_validation():
    with pytest.raises(InvalidParameterError):
        FilterSpec(backend="nope")
    with pytest.raises(InvalidParameterError):
        FilterSpec(backend="grafite", bits_per_key=0)
    with pytest.raises(InvalidParameterError):
        FilterSpec(backend="grafite", max_range_size=0)


def test_spec_params_roundtrip():
    spec = FilterSpec(backend="rosetta", bits_per_key=14.5, max_range_size=64, seed=3)
    assert FilterSpec.from_params(spec.to_params()) == spec


@pytest.mark.parametrize("backend", backend_names())
def test_backend_no_false_negatives_and_batch_parity(backend, keys, probe_bounds):
    filt = make_factory(backend, bits_per_key=14, max_range_size=64, seed=SEED)(
        keys, UNIVERSE
    )
    # No false negatives on point probes of real keys.
    for key in keys[:: max(1, keys.size // 64)]:
        assert filt.may_contain(int(key)), backend
    # Batch path agrees with the scalar loop for every backend — the
    # contract the columnar router relies on.
    los, his = probe_bounds
    batch = filt.may_contain_range_batch(los, his)
    scalar = [filt.may_contain_range(int(lo), int(hi)) for lo, hi in zip(los, his)]
    assert batch.tolist() == scalar, backend


@pytest.mark.parametrize("backend", backend_names())
def test_backend_serialization_roundtrip(backend, keys, probe_bounds):
    info = BACKENDS[backend]
    assert info.serializable
    filt = make_factory(backend, bits_per_key=12, max_range_size=32, seed=SEED)(
        keys, UNIVERSE
    )
    blob = filter_to_bytes(filt)
    restored = filter_from_bytes(blob)
    assert type(restored) is type(filt)
    assert restored.name == filt.name
    assert restored.key_count == filt.key_count
    assert restored.universe == filt.universe
    assert restored.size_in_bits == filt.size_in_bits
    los, his = probe_bounds
    assert (
        restored.may_contain_range_batch(los, his).tolist()
        == filt.may_contain_range_batch(los, his).tolist()
    ), backend
    # The restored filter re-serialises to the identical bytes.
    assert filter_to_bytes(restored) == blob


@pytest.mark.parametrize("backend", ["surf", "snarf", "rosetta"])
def test_engine_mounts_backend_and_reopens_identically(backend, keys, tmp_path):
    spec = FilterSpec(backend=backend, bits_per_key=12, max_range_size=32, seed=SEED)
    with ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=512,
        filter_spec=spec, directory=tmp_path / "db",
    ) as engine:
        for key in keys:
            engine.put(int(key), b"v")
        engine.flush_all()
        rng = np.random.default_rng(SEED + 2)
        los = rng.integers(0, UNIVERSE - 64, 500, dtype=np.uint64)
        his = los + 63
        want = engine.batch_range_empty(los, his)
        stats_before = engine.stats
        assert stats_before.reads_avoided > 0, "filters never pruned anything"

    # Reopen WITHOUT a factory: the spec comes back from the manifest and
    # the filters come back from their blobs, so the probe results (and
    # the pruning behaviour) are bit-for-bit identical.
    reopened = ShardedEngine.open(tmp_path / "db")
    assert reopened.filter_spec == spec
    got = reopened.batch_range_empty(los, his)
    assert got.tolist() == want.tolist()
    assert reopened.filter_bits_total > 0

    # Reopening WITH an explicit factory must not drop the recorded spec
    # from the next checkpoint's manifest (that would make a later
    # no-factory open silently flush unfiltered runs).
    overridden = ShardedEngine.open(
        tmp_path / "db", filter_factory=spec.factory()
    )
    assert overridden.filter_spec == spec
    overridden.checkpoint()
    overridden.close(checkpoint=False)
    again = ShardedEngine.open(tmp_path / "db")
    assert again.filter_spec == spec


def test_reopen_without_restorable_filters_raises_config_error(tmp_path):
    """The satellite bugfix: a snapshot whose runs had filters without a
    stable byte format must not silently come back filterless."""

    class OpaqueFilter:
        """A filter type serialization knows nothing about."""

        def __init__(self, keys, universe):
            self._keys = np.asarray(keys, dtype=np.uint64)
            self.universe = universe

        name = "opaque"
        key_count = property(lambda self: int(self._keys.size))
        size_in_bits = property(lambda self: 64)

        def may_contain_range(self, lo, hi):
            idx = int(np.searchsorted(self._keys, lo))
            return idx < self._keys.size and int(self._keys[idx]) <= hi

        def may_contain_range_batch(self, los, his):
            idx = np.searchsorted(self._keys, los)
            ok = idx < self._keys.size
            out = np.zeros(los.size, dtype=bool)
            out[ok] = self._keys[idx[ok]] <= his[ok]
            return out

    factory = OpaqueFilter
    with ShardedEngine(
        2**20, num_shards=2, memtable_limit=64,
        filter_factory=factory, directory=tmp_path / "db",
    ) as engine:
        for key in range(0, 2000, 3):
            engine.put(key, b"v")

    with pytest.raises(ConfigError):
        ShardedEngine.open(tmp_path / "db")
    # Same factory back: loads fine, runs filtered again.
    reopened = ShardedEngine.open(tmp_path / "db", filter_factory=factory)
    assert all(
        run.filter is not None
        for store in reopened.shards
        for run in store.level0_runs
    )
    # Explicit opt-in to filterless runs also works (the workers' path).
    tolerant = ShardedEngine.open(tmp_path / "db", missing_filter="drop")
    assert not tolerant.range_empty(0, 10)
    assert tolerant.range_empty(2001, 2**20 - 1)


def test_filter_factory_and_spec_are_mutually_exclusive():
    with pytest.raises(InvalidParameterError):
        ShardedEngine(
            2**20,
            filter_factory=lambda k, u: None,
            filter_spec=FilterSpec(backend="grafite"),
        )
