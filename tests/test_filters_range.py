"""Cross-filter behavioural tests.

Every baseline must satisfy the same contract as Grafite: no false
negatives for any data and any query. A single parametrised suite
enforces it, plus per-filter specifics below.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.filters.point_probe import PointProbeFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.proteus import Proteus
from repro.filters.rencoder import REncoder, rencoder_se, rencoder_ss
from repro.filters.rosetta import Rosetta, dyadic_decomposition
from repro.filters.snarf import SnarfFilter
from repro.filters.surf import SuRF

UNIVERSE = 2**32
SAMPLE_QUERIES = [(10, 40), (1000, 1031), (2**20, 2**20 + 31), (5, 5)]


def build_filter(name, keys, universe=UNIVERSE, bpk=16, L=32, seed=0):
    """Factory shared by tests and (via analysis) the benchmarks."""
    if name == "grafite":
        return Grafite(keys, universe, bits_per_key=bpk, max_range_size=L, seed=seed)
    if name == "bucketing":
        return Bucketing(keys, universe, bits_per_key=bpk)
    if name == "rosetta":
        return Rosetta(keys, universe, bits_per_key=bpk, max_range_size=L, seed=seed)
    if name == "snarf":
        return SnarfFilter(keys, universe, bits_per_key=bpk)
    if name == "surf":
        return SuRF(keys, universe, suffix_mode="real", suffix_bits=max(1, int(bpk - 10)), seed=seed)
    if name == "proteus":
        return Proteus(keys, universe, bits_per_key=bpk, sample_queries=SAMPLE_QUERIES, seed=seed)
    if name == "rencoder":
        return REncoder(keys, universe, bits_per_key=bpk, seed=seed)
    if name == "rencoder_ss":
        return rencoder_ss(keys, universe, bits_per_key=bpk, seed=seed)
    if name == "rencoder_se":
        return rencoder_se(keys, universe, bits_per_key=bpk, sample_queries=SAMPLE_QUERIES, seed=seed)
    if name == "point_probe":
        return PointProbeFilter(keys, universe, bits_per_key=bpk, max_range_size=L, seed=seed)
    if name == "prefix_bloom":
        return PrefixBloomFilter(keys, universe, prefix_bits=24, bits_per_key=bpk, seed=seed)
    raise ValueError(name)


ALL_FILTERS = [
    "grafite", "bucketing", "rosetta", "snarf", "surf", "proteus",
    "rencoder", "rencoder_ss", "rencoder_se", "point_probe", "prefix_bloom",
]


@pytest.mark.parametrize("name", ALL_FILTERS)
class TestContract:
    def test_no_false_negatives_fixed(self, name):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.integers(0, UNIVERSE, 400, dtype=np.uint64))
        filt = build_filter(name, keys)
        for key in keys[:80]:
            key = int(key)
            assert filt.may_contain(key), f"{name}: point FN on {key}"
            lo = max(0, key - 11)
            hi = min(UNIVERSE - 1, key + 20)
            assert filt.may_contain_range(lo, hi), f"{name}: range FN around {key}"

    def test_boundary_keys(self, name):
        keys = [0, 1, UNIVERSE - 2, UNIVERSE - 1]
        filt = build_filter(name, keys)
        assert filt.may_contain_range(0, 0)
        assert filt.may_contain_range(UNIVERSE - 1, UNIVERSE - 1)
        assert filt.may_contain_range(0, UNIVERSE - 1)

    def test_empty_key_set(self, name):
        filt = build_filter(name, [])
        assert not filt.may_contain_range(0, 1000)
        assert filt.key_count == 0

    def test_space_accounting_positive(self, name):
        filt = build_filter(name, [1, 2**20, 2**30])
        assert filt.size_in_bits > 0
        assert filt.bits_per_key > 0
        assert filt.key_count == 3

    def test_invalid_query_rejected(self, name):
        filt = build_filter(name, [5])
        from repro.errors import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            filt.may_contain_range(10, 2)
        with pytest.raises(InvalidQueryError):
            filt.may_contain_range(0, UNIVERSE)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_no_false_negatives_property(self, name, data):
        keys = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=UNIVERSE - 1),
                min_size=1,
                max_size=50,
            )
        )
        seed = data.draw(st.integers(min_value=0, max_value=100))
        filt = build_filter(name, keys, seed=seed)
        for key in keys[:8]:
            width = data.draw(st.integers(min_value=0, max_value=40))
            lo = max(0, key - width)
            hi = min(UNIVERSE - 1, key + width)
            assert filt.may_contain_range(lo, hi), f"{name}: FN key={key} [{lo},{hi}]"


class TestDyadicDecomposition:
    def test_single_point(self):
        assert dyadic_decomposition(5, 5) == [(5, 0)]

    def test_aligned_block(self):
        assert dyadic_decomposition(8, 15) == [(8, 3)]

    def test_covers_exactly(self):
        blocks = dyadic_decomposition(3, 77)
        covered = []
        for start, log_size in blocks:
            assert start % (1 << log_size) == 0, "block must be aligned"
            covered.extend(range(start, start + (1 << log_size)))
        assert covered == list(range(3, 78))

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=3000))
    @settings(max_examples=80, deadline=None)
    def test_property_cover(self, lo, width):
        hi = lo + width
        blocks = dyadic_decomposition(lo, hi)
        total = sum(1 << log_size for _, log_size in blocks)
        assert total == width + 1
        assert blocks[0][0] == lo
        # alignment of every block
        for start, log_size in blocks:
            assert start % (1 << log_size) == 0


class TestRosettaSpecifics:
    def test_levels_cover_range_size(self):
        r = Rosetta([1, 2, 3], 2**16, bits_per_key=16, max_range_size=32)
        assert len(r.levels) == 6  # log2(32) + 1
        assert r.levels[-1] == 16

    def test_sample_tuning_runs(self):
        keys = list(range(0, 2**16, 37))
        r = Rosetta(
            keys, 2**16, bits_per_key=14, max_range_size=16,
            sample_queries=[(5, 20), (100, 115)],
        )
        for k in keys[:30]:
            assert r.may_contain(k)

    def test_point_query_uses_leaf_level_only(self):
        r = Rosetta([123], 2**10, bits_per_key=12, max_range_size=1)
        assert len(r.levels) == 1
        assert r.may_contain(123)


class TestSnarfSpecifics:
    def test_requires_enough_budget(self):
        with pytest.raises(InvalidParameterError):
            SnarfFilter([1], 100, bits_per_key=2.0)

    def test_K_parameter_direct(self):
        f = SnarfFilter(list(range(100)), 2**20, K=8)
        assert f.slots_per_key == 8

    def test_uncorrelated_fpr_near_one_over_K(self):
        rng = np.random.default_rng(11)
        universe = 2**40
        keys = np.unique(rng.integers(0, universe, 20_000, dtype=np.uint64))
        K = 64
        f = SnarfFilter(keys, universe, K=K)
        key_sorted = np.sort(keys)
        fp = trials = 0
        while trials < 3000:
            a = int(rng.integers(0, universe - 2))
            b = a + 1
            i = int(np.searchsorted(key_sorted, a))
            if i < key_sorted.size and int(key_sorted[i]) <= b:
                continue
            trials += 1
            fp += f.may_contain_range(a, b)
        assert fp / trials < 6.0 / K  # near 1/K up to constant slack

    def test_float32_defect_mode_constructs(self):
        keys = list(range(0, 10_000, 13))
        f = SnarfFilter(keys, 2**40, K=16, emulate_float32_defect=True)
        # The defect mode may produce false negatives by design; we only
        # check it remains a functioning filter object.
        f.may_contain_range(5, 500)


class TestSurfSpecifics:
    def test_suffix_modes(self):
        keys = [10, 1000, 65_000]
        for mode in ("none", "real", "hash"):
            f = SuRF(keys, 2**16, suffix_mode=mode, suffix_bits=4 if mode != "none" else 0)
            for k in keys:
                assert f.may_contain(k), mode

    def test_invalid_mode(self):
        with pytest.raises(InvalidParameterError):
            SuRF([1], 100, suffix_mode="bogus")

    def test_real_suffix_reduces_fpr(self):
        rng = np.random.default_rng(5)
        universe = 2**32
        keys = np.unique(rng.integers(0, universe, 3000, dtype=np.uint64))
        base = SuRF(keys, universe, suffix_mode="none", suffix_bits=0)
        real = SuRF(keys, universe, suffix_mode="real", suffix_bits=8)
        key_sorted = np.sort(keys)
        fp_base = fp_real = trials = 0
        while trials < 1500:
            a = int(rng.integers(0, universe - 16))
            b = a + 15
            i = int(np.searchsorted(key_sorted, a))
            if i < key_sorted.size and int(key_sorted[i]) <= b:
                continue
            trials += 1
            fp_base += base.may_contain_range(a, b)
            fp_real += real.may_contain_range(a, b)
        assert fp_real <= fp_base

    def test_correlated_queries_defeat_surf(self):
        """The paper's headline: query endpoints near keys break the trie."""
        rng = np.random.default_rng(9)
        universe = 2**40
        keys = np.unique(rng.integers(0, universe, 5000, dtype=np.uint64))
        f = SuRF(keys, universe, suffix_mode="real", suffix_bits=8)
        key_set = set(int(k) for k in keys)
        fp = trials = 0
        for k in keys[:1000]:
            a = int(k) + 1  # immediately right of a key
            b = a + 15
            if any(x in key_set for x in range(a, b + 1)) or b >= universe:
                continue
            trials += 1
            fp += f.may_contain_range(a, b)
        assert trials > 500
        assert fp / trials > 0.5  # little to no filtering under correlation


class TestProteusSpecifics:
    def test_needs_sample_or_design(self):
        with pytest.raises(InvalidParameterError):
            Proteus([1, 2], 2**16, bits_per_key=10)

    def test_explicit_design(self):
        f = Proteus([77, 2**20], 2**24, bits_per_key=12, l1=8, l2=16)
        assert f.design == (8, 16)
        assert f.may_contain(77)

    def test_design_validation(self):
        with pytest.raises(InvalidParameterError):
            Proteus([1], 2**16, bits_per_key=8, l1=3, l2=8)
        with pytest.raises(InvalidParameterError):
            Proteus([1], 2**16, bits_per_key=8, l1=8, l2=8)

    def test_tuner_picks_reasonable_design(self):
        rng = np.random.default_rng(2)
        keys = np.unique(rng.integers(0, 2**32, 2000, dtype=np.uint64))
        queries = [(int(x), int(x) + 31) for x in rng.integers(0, 2**32 - 32, 64, dtype=np.uint64)]
        f = Proteus(keys, 2**32, bits_per_key=18, sample_queries=queries, seed=0)
        l1, l2 = f.design
        assert 0 <= l1 < l2 <= 32


class TestREncoderSpecifics:
    def test_stored_levels_bounds(self):
        with pytest.raises(InvalidParameterError):
            REncoder([1], 2**16, bits_per_key=10, stored_levels=0)
        with pytest.raises(InvalidParameterError):
            REncoder([1], 2**16, bits_per_key=10, stored_levels=99)

    def test_ss_variant_uses_fixed_levels(self):
        full = REncoder(list(range(50)), 2**32, bits_per_key=16)
        ss = rencoder_ss(list(range(50)), 2**32, bits_per_key=16, coverage_levels=3)
        assert ss.stored_levels == 3
        # Base REncoder sizes its level coverage from the budget (load
        # near 50%), never below the SS floor of 3.
        assert 3 <= full.stored_levels <= full.total_levels
        huge_budget = REncoder(list(range(50)), 2**32, bits_per_key=80)
        assert huge_budget.stored_levels == huge_budget.total_levels

    def test_se_variant_tunes_on_sample(self):
        se = rencoder_se(
            list(range(50)), 2**32, bits_per_key=16,
            sample_queries=[(0, 31), (100, 131)],
        )
        assert 1 <= se.stored_levels <= se.total_levels
        assert se.name == "REncoderSE"

    def test_tree_pattern_shape(self):
        from repro.filters.rencoder import tree_pattern

        for s in range(16):
            pattern = tree_pattern(s)
            assert bin(pattern).count("1") == 5  # one node per depth 0..4
            assert pattern & 1  # root always marked


class TestPointProbeSpecifics:
    def test_eps_constructor(self):
        f = PointProbeFilter(list(range(100)), 2**20, eps=0.1, max_range_size=8)
        assert 0 < f.point_fpr <= 0.1 / 8 + 1e-12
        assert f.may_contain_range(50, 57)

    def test_larger_than_L_ranges_still_answered(self):
        f = PointProbeFilter([500], 2**20, eps=0.1, max_range_size=4)
        assert f.may_contain_range(0, 1000)


class TestPrefixBloomSpecifics:
    def test_prefix_granularity_false_positives(self):
        # 24-bit prefixes over a 32-bit universe: 256-value cells.
        f = PrefixBloomFilter([0], 2**32, prefix_bits=24, bits_per_key=32)
        assert f.may_contain_range(1, 255)  # same cell as the key
        assert f.distinct_prefixes == 1

    def test_probe_cap_conservative(self):
        f = PrefixBloomFilter([0], 2**32, prefix_bits=24, bits_per_key=32, max_probes=4)
        # 2^32-wide query overlaps 2^24 prefixes: capped, must stay True.
        assert f.may_contain_range(0, 2**32 - 1)
