"""Differential test harness: random op streams vs. a sorted-dict oracle.

Hand-written example tests stop finding bugs exactly where this PR
lives — interleavings of flushes, compactions, checkpoints, recovery and
range queries. This harness replays *seeded random operation streams*
(put / delete / flush / compact / checkpoint / reopen / range_empty /
get / batched probes) simultaneously against a trivially correct oracle
(a dict plus a sorted key list) and against the real system:

* the single-threaded :class:`ShardedEngine` (in-memory, persistent,
  and with a block cache attached),
* the concurrent :class:`RangeQueryService` at 1, 2 and 8 worker
  threads (mutations are applied sequentially so results stay
  deterministic; queries still fan out across the pool and race the
  background compaction worker),
* the process-mode :class:`RangeQueryService` at 1 and 4 snapshot
  worker processes: the stream's checkpoints re-sync the workers
  (epoch handshake) while its flushes/compactions invalidate them
  mid-stream, so every batch exercises the worker/local routing
  decision against the oracle,
* heuristic filter backends (SuRF, SNARF) mounted through the
  :class:`~repro.filters.registry.FilterSpec` path, in memory and
  persistent — the persistent streams checkpoint and restore the
  heuristic filters' serialised blobs on every reopen,
* the auto-tuned service (``serve --autotune``'s configuration): the
  per-shard tuner retargets backends between batches while the stream
  churns flushes and compactions underneath it.

Every query result is compared the moment it is produced; any
divergence fails with the op index and the offending range, which —
because streams are seeded — reproduces deterministically. Set
``REPRO_DIFF_SEED`` to explore a different stream (CI pins it).

This file is the repo's standing correctness oracle: when a new engine
feature lands, teach ``gen_ops``/``Target`` about it and every
configuration inherits the coverage.
"""

import bisect
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.core.grafite import Grafite
from repro.engine import (
    AutoTunePolicy,
    AutoTuner,
    BatchPlanner,
    RangeQueryService,
    ShardedEngine,
)
from repro.filters.registry import FilterSpec, backend_names
from repro.lsm import BlockCache

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20240731"))
UNIVERSE = 2**20
N_OPS = 5000
BATCH_FLUSH = 64  # pending probes per batch_range_empty comparison


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=12, max_range_size=256, seed=5)


#: Heuristic backends run through the oracle (ISSUE 4): their filters now
#: persist as blobs, so the persistent streams reload them byte-for-byte.
HEURISTIC_SPECS = {
    "surf": FilterSpec(backend="surf", bits_per_key=14, seed=5),
    "snarf": FilterSpec(backend="snarf", bits_per_key=12, seed=5),
}


class Oracle:
    """Sorted-dict reference implementation of the engine's contract."""

    def __init__(self) -> None:
        self._data: Dict[int, Any] = {}
        self._keys: List[int] = []

    def put(self, key: int, value: Any) -> None:
        if key not in self._data:
            bisect.insort(self._keys, key)
        self._data[key] = value

    def delete(self, key: int) -> None:
        if key in self._data:
            del self._data[key]
            self._keys.pop(bisect.bisect_left(self._keys, key))

    def get(self, key: int) -> Optional[Any]:
        return self._data.get(key)

    def range_empty(self, lo: int, hi: int) -> bool:
        idx = bisect.bisect_left(self._keys, lo)
        return idx >= len(self._keys) or self._keys[idx] > hi

    def items(self) -> List[Tuple[int, Any]]:
        return [(k, self._data[k]) for k in self._keys]

    def __len__(self) -> int:
        return len(self._data)


def gen_ops(rng: np.random.Generator, n_ops: int, *, persistent: bool):
    """One seeded operation stream; maintenance ops only where legal."""
    ops = []
    live: List[int] = []  # keys probably present (cheap adversarial reuse)
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.42:
            key = (
                int(live[rng.integers(len(live))])
                if live and rng.random() < 0.25
                else int(rng.integers(UNIVERSE))
            )
            ops.append(("put", key, int(rng.integers(1 << 30))))
            live.append(key)
        elif roll < 0.55:
            key = (
                int(live[rng.integers(len(live))])
                if live and rng.random() < 0.7
                else int(rng.integers(UNIVERSE))
            )
            ops.append(("delete", key))
        elif roll < 0.72:
            ops.append(("range_empty",) + _random_range(rng))
        elif roll < 0.82:
            key = (
                int(live[rng.integers(len(live))])
                if live and rng.random() < 0.5
                else int(rng.integers(UNIVERSE))
            )
            ops.append(("get", key))
        elif roll < 0.94:
            ops.append(("enqueue_probe",) + _random_range(rng))
        elif roll < 0.96:
            ops.append(("flush",))
        elif roll < 0.98:
            ops.append(("compact",))
        elif persistent and roll < 0.995:
            ops.append(("checkpoint",))
        elif persistent:
            ops.append(("reopen",))
    return ops


def _random_range(rng: np.random.Generator) -> Tuple[int, int]:
    if rng.random() < 0.05:  # boundary ranges
        return (0, int(rng.integers(1, UNIVERSE))) if rng.random() < 0.5 else (
            int(rng.integers(UNIVERSE)), UNIVERSE - 1
        )
    lo = int(rng.integers(UNIVERSE))
    width = int(rng.integers(1, 2048))
    return lo, min(lo + width, UNIVERSE - 1)


class Target:
    """Adapter giving every configuration the same op vocabulary."""

    name = "base"

    def put(self, key, value):  # pragma: no cover - interface
        raise NotImplementedError

    def delete(self, key):  # pragma: no cover - interface
        raise NotImplementedError

    def get(self, key):  # pragma: no cover - interface
        raise NotImplementedError

    def range_empty(self, lo, hi):  # pragma: no cover - interface
        raise NotImplementedError

    def batch_range_empty(self, los, his):  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self):
        pass

    def compact(self):
        pass

    def checkpoint(self):
        pass

    def reopen(self):
        pass

    def finish(self):
        """Quiesce and return the full live (key, value) dump."""
        raise NotImplementedError  # pragma: no cover - interface


class EngineTarget(Target):
    def __init__(
        self, *, directory=None, cache=False, num_shards=4, spec=None,
        autotune=False, compaction=None, planner=False,
    ):
        self.name = (
            f"engine(persistent={directory is not None}, cache={cache}, "
            f"spec={spec.backend if spec else 'grafite-factory'}, "
            f"autotune={autotune}, compaction={compaction or 'full'}, "
            f"planner={planner})"
        )
        self._directory = directory
        self._spec = spec
        self._autotune = autotune
        self._planner = planner
        self.engine = ShardedEngine(
            UNIVERSE,
            num_shards=num_shards,
            memtable_limit=96,
            compaction_fanout=3,
            filter_factory=None if spec is not None else grafite_factory,
            filter_spec=spec,
            directory=directory,
            compaction=compaction,
        )
        self._attach_helpers()
        if cache:
            self.engine.attach_block_cache(BlockCache(256, num_stripes=4))

    def _attach_helpers(self):
        if self._autotune:
            self.engine.attach_autotuner(
                AutoTuner(AutoTunePolicy(min_window=128))
            )
        if self._planner:
            # A tiny cache capacity forces constant eviction churn on
            # top of the runs_version invalidation the stream provides.
            self.engine.attach_planner(BatchPlanner(cache_capacity=512))

    def put(self, key, value):
        self.engine.put(key, value)

    def delete(self, key):
        self.engine.delete(key)

    def get(self, key):
        return self.engine.get(key)

    def range_empty(self, lo, hi):
        return self.engine.range_empty(lo, hi)

    def batch_range_empty(self, los, his):
        return self.engine.batch_range_empty(los, his)

    def flush(self):
        self.engine.flush_all()

    def compact(self):
        self.engine.drain_compactions()

    def checkpoint(self):
        self.engine.checkpoint()

    def reopen(self):
        # Crash-style restart: no checkpoint, recovery must replay the WAL.
        # A spec-built engine reopens with *no* factory argument — the
        # spec comes back from the manifest, the filters from their blobs.
        cache = self.engine.block_cache
        self.engine.close(checkpoint=False)
        self.engine = ShardedEngine.open(
            self._directory,
            filter_factory=None if self._spec is not None else grafite_factory,
        )
        self._attach_helpers()
        if cache is not None:
            self.engine.attach_block_cache(cache)

    def finish(self):
        return self.engine.range_scan(0, UNIVERSE - 1)


class ServiceTarget(Target):
    def __init__(
        self, num_threads: int, *, directory=None, mode="thread", workers=None,
        spec=None, autotune=False, compaction=None, planner=False,
    ):
        self.name = (
            f"service(threads={num_threads}, mode={mode}, workers={workers}, "
            f"spec={spec.backend if spec else 'grafite-factory'}, "
            f"autotune={autotune}, compaction={compaction or 'full'}, "
            f"planner={planner})"
        )
        self._threads = num_threads
        self._directory = directory
        self._mode = mode
        self._workers = workers
        self._spec = spec
        self._autotune = autotune
        self._planner = planner
        self.engine = ShardedEngine(
            UNIVERSE,
            num_shards=4,
            memtable_limit=96,
            compaction_fanout=3,
            filter_factory=None if spec is not None else grafite_factory,
            filter_spec=spec,
            directory=directory,
            compaction=compaction,
        )
        if autotune:
            self.engine.attach_autotuner(AutoTuner(AutoTunePolicy(min_window=128)))
        if planner:
            self.engine.attach_planner(BatchPlanner(cache_capacity=512))
        self.service = RangeQueryService(
            self.engine, num_threads=num_threads, cache_blocks=256,
            compaction_poll=0.002, mode=mode, num_workers=workers,
        )

    def put(self, key, value):
        self.service.put(key, value)

    def delete(self, key):
        self.service.delete(key)

    def get(self, key):
        return self.service.get(key)

    def range_empty(self, lo, hi):
        return self.service.range_empty(lo, hi)

    def batch_range_empty(self, los, his):
        return self.service.batch_range_empty(los, his)

    def flush(self):
        self.service.flush_all()

    def compact(self):
        # Compaction is the background worker's job; just give it a beat.
        self.service.wait_for_compactions(timeout=10.0)

    def checkpoint(self):
        self.service.checkpoint()

    def reopen(self):
        self.service.close()
        self.engine.close(checkpoint=False)
        self.engine = ShardedEngine.open(
            self._directory,
            filter_factory=None if self._spec is not None else grafite_factory,
        )
        if self._autotune:
            self.engine.attach_autotuner(AutoTuner(AutoTunePolicy(min_window=128)))
        if self._planner:
            self.engine.attach_planner(BatchPlanner(cache_capacity=512))
        self.service = RangeQueryService(
            self.engine, num_threads=self._threads, cache_blocks=256,
            compaction_poll=0.002, mode=self._mode, num_workers=self._workers,
        )

    def finish(self):
        assert self.service.wait_for_compactions(timeout=20.0)
        self.service.close()
        return self.engine.range_scan(0, UNIVERSE - 1)


def replay(target: Target, ops) -> None:
    """Apply one op stream, checking every query against the oracle."""
    oracle = Oracle()
    pending: List[Tuple[int, int]] = []

    def drain_pending():
        if not pending:
            return
        los = np.asarray([lo for lo, _ in pending], dtype=np.uint64)
        his = np.asarray([hi for _, hi in pending], dtype=np.uint64)
        got = target.batch_range_empty(los, his)
        want = [oracle.range_empty(lo, hi) for lo, hi in pending]
        mismatches = [
            (q, pending[q], bool(got[q]), want[q])
            for q in range(len(pending))
            if bool(got[q]) != want[q]
        ]
        assert not mismatches, (
            f"{target.name}: batch divergence at op {index}: {mismatches[:5]}"
        )
        pending.clear()

    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "put":
            target.put(op[1], op[2])
            oracle.put(op[1], op[2])
        elif kind == "delete":
            target.delete(op[1])
            oracle.delete(op[1])
        elif kind == "get":
            got, want = target.get(op[1]), oracle.get(op[1])
            assert got == want, (
                f"{target.name}: get({op[1]}) = {got!r}, oracle {want!r} "
                f"at op {index}"
            )
        elif kind == "range_empty":
            got, want = target.range_empty(op[1], op[2]), oracle.range_empty(
                op[1], op[2]
            )
            assert got == want, (
                f"{target.name}: range_empty{op[1:]} = {got}, oracle {want} "
                f"at op {index}"
            )
        elif kind == "enqueue_probe":
            pending.append((op[1], op[2]))
            if len(pending) >= BATCH_FLUSH:
                drain_pending()
        else:  # maintenance ops never change query answers
            getattr(target, kind)()
    drain_pending()
    assert target.finish() == oracle.items(), f"{target.name}: final state diverged"


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def test_oracle_self_check():
    oracle = Oracle()
    oracle.put(5, "a")
    oracle.put(9, "b")
    oracle.delete(5)
    assert oracle.get(5) is None and oracle.get(9) == "b"
    assert oracle.range_empty(0, 8) and not oracle.range_empty(0, 9)
    assert oracle.items() == [(9, "b")]


@pytest.mark.parametrize("cache", [False, True])
def test_differential_engine_in_memory(cache):
    rng = np.random.default_rng(SEED)
    replay(EngineTarget(cache=cache), gen_ops(rng, N_OPS, persistent=False))


def test_differential_engine_persistent(tmp_path):
    rng = np.random.default_rng(SEED + 1)
    replay(
        EngineTarget(directory=tmp_path / "db"),
        gen_ops(rng, N_OPS, persistent=True),
    )


@pytest.mark.parametrize("num_threads", [1, 2, 8])
def test_differential_service(num_threads):
    rng = np.random.default_rng(SEED + 2)
    replay(
        ServiceTarget(num_threads), gen_ops(rng, N_OPS, persistent=False)
    )


def test_differential_service_persistent(tmp_path):
    rng = np.random.default_rng(SEED + 3)
    replay(
        ServiceTarget(2, directory=tmp_path / "db"),
        gen_ops(rng, N_OPS, persistent=True),
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_differential_service_process(tmp_path, workers):
    """Process mode against the oracle, checkpoint-epoch churn included.

    The persistent stream carries checkpoints (which hand fresh snapshots
    to the workers mid-stream), flushes/compactions (which invalidate
    them), reopens (which rebuild the whole pool) and a steady write mix
    (so the per-query memtable-overlap fallback fires): every batched
    probe must still match the sorted-dict oracle bit for bit.
    """
    rng = np.random.default_rng(SEED + 5 + workers)
    replay(
        ServiceTarget(2, directory=tmp_path / "db", mode="process", workers=workers),
        gen_ops(rng, N_OPS, persistent=True),
    )


@pytest.mark.parametrize("backend", sorted(HEURISTIC_SPECS))
def test_differential_engine_heuristic_in_memory(backend):
    """Heuristic backends ride the generic batch fallback; answers must
    still match the oracle bit for bit (filters only ever prune)."""
    rng = np.random.default_rng(SEED + 11)
    replay(
        EngineTarget(spec=HEURISTIC_SPECS[backend]),
        gen_ops(rng, N_OPS // 2, persistent=False),
    )


@pytest.mark.parametrize("backend", sorted(HEURISTIC_SPECS))
def test_differential_engine_heuristic_persistent(tmp_path, backend):
    """Persistent streams exercise the new serialization formats: every
    checkpoint snapshots SuRF/SNARF blobs and every reopen restores them
    (no factory argument — the spec comes back from the manifest)."""
    rng = np.random.default_rng(SEED + 13)
    replay(
        EngineTarget(directory=tmp_path / "db", spec=HEURISTIC_SPECS[backend]),
        gen_ops(rng, N_OPS // 2, persistent=True),
    )


@pytest.mark.parametrize("backend", backend_names())
def test_differential_service_every_backend(backend):
    """`serve --filter <backend>` exactness for the whole registry: a
    shorter stream than the deep suites above, but every backend answers
    the identical op mix through the concurrent service."""
    rng = np.random.default_rng(SEED + 19)
    replay(
        ServiceTarget(2, spec=FilterSpec(backend=backend, bits_per_key=14, seed=5)),
        gen_ops(rng, N_OPS // 5, persistent=False),
    )


def test_differential_service_autotune():
    """`serve --autotune`'s exactness: the tuner retargets shards between
    batches while the stream interleaves flushes/compactions."""
    rng = np.random.default_rng(SEED + 17)
    replay(
        ServiceTarget(2, spec=HEURISTIC_SPECS["snarf"], autotune=True),
        gen_ops(rng, N_OPS // 2, persistent=False),
    )


def test_differential_engine_planner():
    """The planned batch path against the oracle: dedup/cover rewrites
    and negative-cache replays must answer the identical op mix bit for
    bit while the stream's flushes/compactions bump ``runs_version``
    (evicting entries) and its writes dirty memtables (disqualifying
    hits without a version bump)."""
    rng = np.random.default_rng(SEED + 37)
    replay(
        EngineTarget(planner=True), gen_ops(rng, N_OPS, persistent=False)
    )


def test_differential_engine_planner_persistent(tmp_path):
    """Planner + persistence: reopens rebuild the engine (the replacement
    engine gets a fresh planner attached) and WAL replay must not leave
    stale negative-cache state anywhere."""
    rng = np.random.default_rng(SEED + 41)
    replay(
        EngineTarget(directory=tmp_path / "db", planner=True),
        gen_ops(rng, N_OPS, persistent=True),
    )


@pytest.mark.parametrize("num_threads", [2, 8])
def test_differential_service_planner(num_threads):
    """`serve --plan`'s configuration: the planner's passes run on the
    service's calling thread, cache consultation borrows the per-shard
    read locks, and the cost model dispatches sub-batches between the
    scalar and columnar kernels mid-stream."""
    rng = np.random.default_rng(SEED + 43)
    replay(
        ServiceTarget(num_threads, planner=True),
        gen_ops(rng, N_OPS, persistent=False),
    )


def test_differential_service_planner_process(tmp_path):
    """Planner over process mode: the cost model routes big clean
    sub-batches to snapshot workers and overlapping/small ones to the
    local kernels, under checkpoint-epoch churn."""
    rng = np.random.default_rng(SEED + 47)
    replay(
        ServiceTarget(
            2, directory=tmp_path / "db", mode="process", workers=2,
            planner=True,
        ),
        gen_ops(rng, N_OPS // 2, persistent=True),
    )


def _policy(kind):
    """Differential-sized policy instances: tiny slices so the leveled
    topology is real (many slices, partial rewrites) at 96-entry
    memtables instead of degenerating to one slice."""
    from repro.lsm import LeveledPolicy

    return LeveledPolicy(slice_target=64) if kind == "leveled" else kind


@pytest.mark.parametrize("kind", ["tiered", "leveled"])
def test_differential_engine_compaction_policies(kind):
    """The non-default compaction policies answer the identical op mix:
    tiered cascades and leveled slice rewrites never change a result."""
    rng = np.random.default_rng(SEED + 23)
    replay(
        EngineTarget(compaction=_policy(kind)),
        gen_ops(rng, N_OPS // 2, persistent=False),
    )


@pytest.mark.parametrize("kind", ["tiered", "leveled"])
def test_differential_engine_compaction_policies_persistent(tmp_path, kind):
    """Persistent streams under tiered/leveled: checkpoints snapshot the
    level/slice topology (manifest v2), reopens restore it (the policy
    itself comes back from the manifest — reopen passes no policy), and
    WAL replay lands on the restored levels."""
    rng = np.random.default_rng(SEED + 29)
    replay(
        EngineTarget(directory=tmp_path / "db", compaction=_policy(kind)),
        gen_ops(rng, N_OPS // 2, persistent=True),
    )


@pytest.mark.parametrize("kind", ["tiered", "leveled"])
def test_differential_service_compaction_policies(kind):
    """The concurrent service's background worker drains bounded steps
    under shard write locks while queries fan out — per-policy."""
    rng = np.random.default_rng(SEED + 31)
    replay(
        ServiceTarget(2, compaction=_policy(kind)),
        gen_ops(rng, N_OPS // 2, persistent=False),
    )


def test_second_seed_engine_and_service():
    """A second stream per run guards against a luckily easy primary seed."""
    rng = np.random.default_rng(SEED ^ 0xDEC0DE)
    ops = gen_ops(rng, N_OPS // 2, persistent=False)
    replay(EngineTarget(), ops)
    replay(ServiceTarget(4), ops)


# ----------------------------------------------------------------------
# Scenario-driven streams (ISSUE 9): the declarative workload suite of
# :mod:`repro.workloads.scenarios` feeds this same oracle discipline.
# ----------------------------------------------------------------------
def _scan_heavy_ttl():
    """Registry ``scan-heavy`` with a TTL clock layered on: scans race
    compaction-side expiry, and every verdict must stay exact against
    the TTL-aware oracle."""
    from dataclasses import asdict

    from repro.workloads.scenarios import Scenario, TTLConfig, get_scenario

    base = asdict(get_scenario("scan-heavy"))
    base.update(name="scan-heavy-ttl", ttl=TTLConfig(
        expire_fraction=0.5, lifetime=(4, 48), tick_every=48,
    ))
    return Scenario(**base)


@pytest.mark.parametrize("num_threads", [1, 8])
def test_differential_scenario_update_heavy(num_threads):
    """Update-heavy mix (55% inserts, 15% deletes) through the service:
    hot-key churn with memtable/compaction races at both a serial and a
    wide thread pool, bit-exact against the sorted-dict oracle."""
    from repro.workloads.scenarios import run_scenario

    report = run_scenario(
        "update-heavy", mode="service", seed=SEED,
        num_threads=num_threads, scale=0.5,
    )
    assert report.ok, (
        f"scenario diverged ({report.mismatches} mismatches, "
        f"final_match={report.final_match}): {report.mismatch_samples[:5]}"
    )
    assert report.checks > 0 and report.counts["delete"] > 0


@pytest.mark.parametrize("num_threads", [1, 8])
def test_differential_scenario_scan_heavy_ttl(num_threads):
    """Scan-heavy mix with TTL expiry: half the inserts carry deadlines,
    the logical clock ticks mid-stream, and expired keys must vanish
    from scans and probes exactly when the oracle says so."""
    from repro.workloads.scenarios import run_scenario

    report = run_scenario(
        _scan_heavy_ttl(), mode="service", seed=SEED,
        num_threads=num_threads, scale=0.5,
    )
    assert report.ok, (
        f"scenario diverged ({report.mismatches} mismatches, "
        f"final_match={report.final_match}): {report.mismatch_samples[:5]}"
    )
    assert report.ttl_now > 0 and report.counts["scan"] > 0
