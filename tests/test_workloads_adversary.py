"""Tests for the adversarial query generators (§1, §6.2 threat model)."""

import numpy as np
import pytest

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.workloads.adversary import AdaptiveAdversary, KeyKnowledgeAdversary
from repro.workloads.datasets import uniform
from repro.workloads.queries import intersects

UNIVERSE = 2**40
KEYS = uniform(2000, universe=UNIVERSE, seed=0)


class TestKeyKnowledgeAdversary:
    def test_crafted_queries_are_empty_and_adjacent(self):
        adv = KeyKnowledgeAdversary(KEYS, leaked_fraction=0.2, seed=1)
        queries = adv.craft_queries(100, 16, UNIVERSE)
        assert len(queries) == 100
        key_set = set(int(k) for k in KEYS)
        for lo, hi in queries:
            assert not intersects(KEYS, lo, hi)
            assert (lo - 1) in key_set  # hugging a leaked key

    def test_leaked_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            KeyKnowledgeAdversary(KEYS, leaked_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            KeyKnowledgeAdversary(np.zeros(0, dtype=np.uint64))

    def test_leaked_count(self):
        adv = KeyKnowledgeAdversary(KEYS, leaked_fraction=0.5, seed=0)
        assert adv.leaked_key_count == KEYS.size // 2


class TestAdaptiveAdversary:
    def test_attack_breaks_bucketing_not_grafite(self):
        """The paper's robustness claim as an adversarial game."""
        bucketing = Bucketing(KEYS, UNIVERSE, bits_per_key=12)
        grafite = Grafite(KEYS, UNIVERSE, bits_per_key=12, max_range_size=16, seed=0)
        adv_b = AdaptiveAdversary(KEYS, leaked_fraction=0.3, seed=2)
        adv_g = AdaptiveAdversary(KEYS, leaked_fraction=0.3, seed=2)
        report_b = adv_b.attack(bucketing, rounds=3, queries_per_round=150, range_size=16)
        report_g = adv_g.attack(grafite, rounds=3, queries_per_round=150, range_size=16)
        # Bucketing collapses under key-adjacent queries...
        assert report_b.final_fpr > 0.5
        # ...while Grafite keeps its distribution-free bound (16/2^10 ~ 0.016).
        assert report_g.final_fpr <= grafite.fpr_bound(16) * 3 + 0.02

    def test_validation(self):
        adv = AdaptiveAdversary(KEYS, seed=0)
        g = Grafite(KEYS, UNIVERSE, bits_per_key=10, seed=0)
        with pytest.raises(InvalidParameterError):
            adv.attack(g, rounds=0, queries_per_round=10, range_size=4)

    def test_report_fields(self):
        adv = AdaptiveAdversary(KEYS, seed=3)
        b = Bucketing(KEYS, UNIVERSE, bits_per_key=10)
        report = adv.attack(b, rounds=2, queries_per_round=50, range_size=8)
        assert len(report.per_round_fpr) == 2
        assert 0 <= report.final_fpr <= 1
        assert report.amplification >= 0
