"""Tests for DynamicGrafite (the §7 insertions open problem, engineered)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicGrafite
from repro.errors import InvalidKeyError, InvalidParameterError

UNIVERSE = 2**32


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DynamicGrafite(0, UNIVERSE, eps=0.1)
        with pytest.raises(InvalidParameterError):
            DynamicGrafite(10, UNIVERSE)  # no budget knob
        with pytest.raises(InvalidParameterError):
            DynamicGrafite(10, UNIVERSE, eps=0.1, bits_per_key=8)
        with pytest.raises(InvalidParameterError):
            DynamicGrafite(10, UNIVERSE, eps=0.1, buffer_size=0)

    def test_empty_filter(self):
        d = DynamicGrafite(100, UNIVERSE, eps=0.1, seed=0)
        assert d.key_count == 0
        assert not d.may_contain_range(0, UNIVERSE - 1)
        assert d.fpr_bound(10) == 0.0

    def test_bits_per_key_constructor(self):
        d = DynamicGrafite(1000, UNIVERSE, bits_per_key=16, max_range_size=32, seed=0)
        assert d.reduced_universe == min(UNIVERSE, int(1000 * 32 / (32 / 2**14)))


class TestInserts:
    def test_insert_then_found(self):
        d = DynamicGrafite(1000, UNIVERSE, eps=0.01, max_range_size=16, seed=1)
        for key in (0, 17, 2**31, UNIVERSE - 1):
            d.insert(key)
            assert d.may_contain(key)
        assert d.key_count == 4

    def test_key_validation(self):
        d = DynamicGrafite(10, UNIVERSE, eps=0.1, seed=0)
        with pytest.raises(InvalidKeyError):
            d.insert(UNIVERSE)
        with pytest.raises(InvalidKeyError):
            d.insert(-1)
        with pytest.raises(InvalidKeyError):
            d.may_contain_range(5, 2)

    def test_flush_and_levels(self):
        d = DynamicGrafite(10_000, UNIVERSE, eps=0.01, buffer_size=16, seed=2)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, UNIVERSE, 500, dtype=np.uint64)
        for k in keys:
            d.insert(int(k))
        # Logarithmic method: run count stays O(log(n / buffer)).
        assert d.run_count <= int(np.log2(500 / 16)) + 2
        for k in keys[:100]:
            assert d.may_contain(int(k))

    def test_insert_many_matches_scalar(self):
        keys = list(range(0, 50_000, 97))
        a = DynamicGrafite(2000, UNIVERSE, eps=0.05, buffer_size=64, seed=3)
        b = DynamicGrafite(2000, UNIVERSE, eps=0.05, buffer_size=64, seed=3)
        a.insert_many(keys)
        for k in keys:
            b.insert(k)
        probes = [(k - 3, k + 3) for k in keys[:50]] + [(10, 90), (1234, 1300)]
        for lo, hi in probes:
            lo = max(0, lo)
            assert a.may_contain_range(lo, hi) == b.may_contain_range(lo, hi)

    def test_compact_preserves_answers(self):
        d = DynamicGrafite(5000, UNIVERSE, eps=0.02, buffer_size=32, seed=4)
        keys = list(range(0, 2**20, 4099))
        d.insert_many(keys)
        windows = [(max(0, k - 5), k + 5) for k in keys[:50]]
        before = [d.may_contain_range(lo, hi) for lo, hi in windows]
        d.compact()
        assert d.run_count == 1
        after = [d.may_contain_range(lo, hi) for lo, hi in windows]
        assert before == after
        for k in keys:
            assert d.may_contain(k)

    def test_beyond_capacity_still_no_false_negatives(self):
        d = DynamicGrafite(50, UNIVERSE, eps=0.1, buffer_size=8, seed=5)
        keys = list(range(0, 10_000, 37))  # 271 keys >> capacity 50
        d.insert_many(keys)
        for k in keys:
            assert d.may_contain(k)
        # Overfull: the honest bound n*ell/r exceeds the design eps.
        assert d.fpr_bound(16) > 0.1


class TestBehaviour:
    def test_fpr_tracks_fill_level(self):
        rng = np.random.default_rng(6)
        capacity, L = 5000, 16
        d = DynamicGrafite(capacity, UNIVERSE, eps=0.05, max_range_size=L, seed=6)
        keys = np.unique(rng.integers(0, UNIVERSE, capacity, dtype=np.uint64))
        d.insert_many(keys)
        sorted_keys = np.sort(keys)
        fp = trials = 0
        while trials < 2000:
            a = int(rng.integers(0, UNIVERSE - L))
            b = a + L - 1
            i = int(np.searchsorted(sorted_keys, a))
            if i < sorted_keys.size and int(sorted_keys[i]) <= b:
                continue
            trials += 1
            fp += d.may_contain_range(a, b)
        assert fp / trials <= 0.05 * 2 + 0.01

    def test_space_stays_near_static(self):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.integers(0, UNIVERSE, 4000, dtype=np.uint64))
        d = DynamicGrafite(4000, UNIVERSE, eps=0.01, buffer_size=128, seed=8)
        d.insert_many(keys)
        d.compact()
        from repro.core.grafite import Grafite

        static = Grafite(keys, UNIVERSE, eps=0.01, max_range_size=32, seed=8)
        assert d.size_in_bits <= static.size_in_bits * 1.5

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_property(self, data):
        d = DynamicGrafite(
            200, UNIVERSE,
            eps=data.draw(st.sampled_from([0.01, 0.2, 0.9])),
            max_range_size=data.draw(st.sampled_from([1, 8, 64])),
            buffer_size=data.draw(st.sampled_from([1, 4, 32])),
            seed=data.draw(st.integers(0, 50)),
        )
        keys = data.draw(
            st.lists(st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=60)
        )
        for i, key in enumerate(keys):
            d.insert(key)
            if i % 7 == 0:
                for earlier in keys[: i + 1]:
                    lo = max(0, earlier - 2)
                    hi = min(UNIVERSE - 1, earlier + 2)
                    assert d.may_contain_range(lo, hi)
