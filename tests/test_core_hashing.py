"""Tests for the hash-function layer (paper §3, equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    LocalityPreservingHash,
    PairwiseIndependentHash,
    PowerOfTwoLocalityHash,
    choose_prime,
)
from repro.errors import InvalidParameterError


class TestChoosePrime:
    def test_returns_strictly_larger(self):
        assert choose_prime(100) == 2**31 - 1
        assert choose_prime(2**31 - 1) == 2**61 - 1
        assert choose_prime(2**64) == 2**89 - 1

    def test_huge_minimum_rejected(self):
        with pytest.raises(InvalidParameterError):
            choose_prime(2**521)


class TestPairwiseIndependentHash:
    def test_codomain_respected(self):
        q = PairwiseIndependentHash(97, domain=10**6, seed=1)
        values = [q(x) for x in range(1000)]
        assert all(0 <= v < 97 for v in values)

    def test_deterministic_under_seed(self):
        q1 = PairwiseIndependentHash(1000, seed=42)
        q2 = PairwiseIndependentHash(1000, seed=42)
        assert [q1(x) for x in range(50)] == [q2(x) for x in range(50)]

    def test_different_seeds_differ(self):
        q1 = PairwiseIndependentHash(10**6, seed=1)
        q2 = PairwiseIndependentHash(10**6, seed=2)
        assert [q1(x) for x in range(20)] != [q2(x) for x in range(20)]

    def test_parameters_exposed(self):
        q = PairwiseIndependentHash(10, domain=100, seed=0)
        p, c1, c2 = q.parameters
        assert p > 100 and 1 <= c1 < p and 0 <= c2 < p

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            PairwiseIndependentHash(0)
        with pytest.raises(InvalidParameterError):
            PairwiseIndependentHash(10, domain=0)

    def test_uniformity_rough(self):
        """Chi-square style sanity check: bucket counts stay near uniform."""
        r = 16
        q = PairwiseIndependentHash(r, domain=10**6, seed=7)
        counts = np.zeros(r)
        samples = 8000
        for x in range(samples):
            counts[q(x * 631 + 17)] += 1
        expected = samples / r
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))


class TestLocalityPreservingHash:
    def test_codomain(self):
        h = LocalityPreservingHash(1000, domain=2**32, seed=3)
        assert all(0 <= h(x) < 1000 for x in range(0, 2**32, 2**27))

    def test_locality_within_block(self):
        """Inside one block of size r the hash is a cyclic shift."""
        r = 997
        h = LocalityPreservingHash(r, domain=10**7, seed=5)
        base = 3 * r
        h0 = h(base)
        for delta in range(1, 50):
            assert h(base + delta) == (h0 + delta) % r

    def test_paper_example_3_2(self):
        """Reconstructs Example 3.2 with the paper's fixed q parameters."""
        r = 100
        h = LocalityPreservingHash(r, domain=512, seed=0)
        # Override the drawn parameters with the paper's p=2^31-1, c1=10, c2=5.
        h._q._p, h._q._c1, h._q._c2 = 2**31 - 1, 10, 5
        keys = [9, 48, 50, 191, 226, 269, 335, 446, 487, 511]
        assert [h(x) for x in keys] == [14, 53, 55, 6, 51, 94, 70, 91, 32, 66]
        # Example 3.3 endpoints:
        assert h(44) == 49 and h(47) == 52

    def test_hash_many_matches_scalar(self):
        h = LocalityPreservingHash(12345, domain=2**40, seed=11)
        keys = [0, 1, 12344, 12345, 2**39, 2**40 - 1]
        batch = h.hash_many(keys)
        assert batch.tolist() == [h(x) for x in keys]

    def test_hash_many_empty(self):
        h = LocalityPreservingHash(10, seed=0)
        assert h.hash_many([]).size == 0

    def test_invalid_reduced_universe(self):
        with pytest.raises(InvalidParameterError):
            LocalityPreservingHash(0)

    @given(st.integers(min_value=2, max_value=10**6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_collision_structure(self, r, data):
        """h(x) == h(y) within a block implies x == y (shift is injective)."""
        h = LocalityPreservingHash(r, domain=10**9, seed=data.draw(st.integers(0, 100)))
        block = data.draw(st.integers(min_value=0, max_value=10**9 // r - 1))
        xs = data.draw(
            st.lists(st.integers(min_value=0, max_value=r - 1), min_size=2, max_size=10, unique=True)
        )
        codes = [h(block * r + x) for x in xs]
        assert len(set(codes)) == len(xs)


class TestPowerOfTwoLocalityHash:
    def test_matches_general_form(self):
        k = 10
        h = PowerOfTwoLocalityHash(k, domain=2**30, seed=9)
        r = 1 << k
        for x in [0, 5, r - 1, r, 123456, 2**29]:
            expected = (h._q(x >> k) + x) & (r - 1)
            assert h(x) == expected
            assert 0 <= h(x) < r

    def test_locality(self):
        h = PowerOfTwoLocalityHash(8, domain=2**20, seed=1)
        base = 256 * 7
        h0 = h(base)
        for delta in range(1, 30):
            assert h(base + delta) == (h0 + delta) % 256

    def test_hash_many(self):
        h = PowerOfTwoLocalityHash(6, domain=2**16, seed=2)
        keys = list(range(0, 2**16, 997))
        assert h.hash_many(keys).tolist() == [h(x) for x in keys]

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            PowerOfTwoLocalityHash(-1)


class TestVectorisedHashMany:
    """``hash_many`` must equal the scalar ``q`` on every modulus path."""

    @pytest.mark.parametrize(
        ("domain", "codomain"),
        [
            (10**5, 997),          # p = 2^31 - 1: plain uint64 arithmetic
            (2**40, 2**35),        # p = 2^61 - 1: limb-split Mersenne mulmod
            (2**100, 1000),        # p = 2^127 - 1: python fallback
        ],
    )
    def test_matches_scalar(self, domain, codomain):
        h = PairwiseIndependentHash(codomain, domain=domain, seed=11)
        rng = np.random.default_rng(2)
        xs = rng.integers(0, min(domain, 2**63), 3000, dtype=np.uint64)
        assert h.hash_many(xs).tolist() == [h(int(x)) for x in xs]

    def test_empty_column(self):
        h = PairwiseIndependentHash(97, domain=10**4, seed=1)
        assert h.hash_many(np.zeros(0, dtype=np.uint64)).size == 0

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mersenne61_boundary_operands(self, seed):
        """Operands hugging 0, p - 1 and the limb boundaries must reduce
        exactly — the classic failure modes of split-multiply modmul."""
        h = PairwiseIndependentHash(2**35, domain=2**40, seed=seed)
        p = h.parameters[0]
        assert p == 2**61 - 1
        edges = np.asarray(
            [0, 1, 2**29, 2**32 - 1, 2**32, 2**40 - 1, 2**40 - 2],
            dtype=np.uint64,
        )
        assert h.hash_many(edges).tolist() == [h(int(x)) for x in edges]

    def test_locality_hash_blocks(self):
        lp = LocalityPreservingHash(4 * 10**8, domain=2**48, seed=9)
        blocks = np.arange(200, dtype=np.uint64)
        assert lp.hash_blocks(blocks).tolist() == [
            lp.hash_block(int(b)) for b in blocks
        ]
        p2 = PowerOfTwoLocalityHash(20, domain=2**48, seed=9)
        assert p2.hash_blocks(blocks).tolist() == [
            p2.hash_block(int(b)) for b in blocks
        ]
