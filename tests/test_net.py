"""Tests for the network front door (:mod:`repro.net`).

Three layers of coverage:

* **protocol** — frame codec round-trips (including byte-at-a-time
  feeding) and the fuzz contract: truncated/corrupt input raises
  :class:`ProtocolError`, never anything else;
* **loopback differential** — a live server over a seeded engine must
  answer exactly like the wrapped :class:`RangeQueryService` called
  directly, for single queries, columnar batches, mutations, and
  concurrent clients;
* **operational behaviour** — version negotiation, admission-control
  sheds, batching-window coalescing, a malformed-frame hammer that the
  server must survive, and the ``serve --listen`` SIGINT drain
  exercised through a real subprocess.
"""

import asyncio
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.grafite import Grafite
from repro.engine import RangeQueryService, ShardedEngine
from repro.net import (
    AsyncClient,
    FrameDecoder,
    ProtocolError,
    RemoteError,
    ServerConfig,
    ShedError,
    SyncClient,
    serve_in_thread,
)
from repro.net import protocol as proto
from repro.workloads.queries import zipfian_queries

UNIVERSE = 2**32


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=14, max_range_size=64, seed=7)


@pytest.fixture(scope="module")
def service():
    engine = ShardedEngine(
        UNIVERSE, num_shards=4, memtable_limit=256,
        filter_factory=grafite_factory,
    )
    rng = np.random.default_rng(11)
    keys = rng.integers(0, UNIVERSE, 4000, dtype=np.uint64)
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    svc = RangeQueryService(engine, num_threads=2, cache_blocks=512)
    svc.keys = np.unique(keys)  # stashed for the differential tests
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    handle = serve_in_thread(
        service, config=ServerConfig(batch_window=200e-6)
    )
    yield handle
    handle.stop()


# ----------------------------------------------------------------------
# Protocol codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip(self):
        payload = proto.encode_frame(proto.OP_PING, 7, b"abc")
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1
        frame = frames[0]
        assert (frame.op, frame.status, frame.request_id, frame.body) == (
            proto.OP_PING, proto.STATUS_OK, 7, b"abc"
        )
        assert not frame.is_response
        assert frame.base_op == proto.OP_PING

    def test_byte_at_a_time_feeding(self):
        payload = proto.encode_range(3, 10, 20) + proto.encode_point(4, 5)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(payload)):
            frames.extend(decoder.feed(payload[i:i + 1]))
        assert [f.request_id for f in frames] == [3, 4]
        assert decoder.buffered == 0

    def test_partial_frame_stays_buffered(self):
        payload = proto.encode_range(1, 0, 9)
        decoder = FrameDecoder()
        assert decoder.feed(payload[:-1]) == []
        assert decoder.buffered == len(payload) - 1
        assert len(decoder.feed(payload[-1:])) == 1

    def test_response_bit(self):
        frames = FrameDecoder().feed(proto.encode_range_response(9, True))
        assert frames[0].is_response
        assert frames[0].base_op == proto.OP_RANGE
        assert proto.decode_range_response(frames[0].body) is True

    def test_batch_roundtrip_and_zero_copy(self):
        los = np.array([1, 5, 100], dtype=np.uint64)
        his = np.array([4, 5, 200], dtype=np.uint64)
        frame = FrameDecoder().feed(proto.encode_batch(2, los, his))[0]
        dlos, dhis = proto.decode_batch(frame.body)
        np.testing.assert_array_equal(dlos, los)
        np.testing.assert_array_equal(dhis, his)
        # Zero copy: the decoded columns are views over the frame body.
        assert dlos.base is not None and not dlos.flags.owndata

    def test_batch_response_bitmap(self):
        for n in (0, 1, 7, 8, 9, 64, 100):
            empty = (np.arange(n) % 3 == 0)
            body = FrameDecoder().feed(
                proto.encode_batch_response(1, empty)
            )[0].body
            np.testing.assert_array_equal(
                proto.decode_batch_response(body), empty
            )

    def test_negotiate_version(self):
        assert proto.negotiate_version(1, 1) == proto.PROTOCOL_VERSION
        assert proto.negotiate_version(1, 99) == proto.PROTOCOL_VERSION
        assert proto.negotiate_version(
            proto.PROTOCOL_VERSION + 1, proto.PROTOCOL_VERSION + 5
        ) is None

    def test_oversized_frame_rejected_encode_side(self):
        with pytest.raises(ProtocolError):
            proto.encode_frame(proto.OP_BATCH, 1, b"x" * proto.MAX_FRAME)


class TestFrameFuzz:
    """Malformed input raises ProtocolError — never anything else."""

    def test_length_below_header(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack("<I", 2) + b"xx")

    def test_length_above_cap(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack("<I", proto.MAX_FRAME + 1))

    def test_batch_body_count_mismatch(self):
        body = struct.pack("<I", 10) + b"\x00" * 16  # says 10, carries 1
        with pytest.raises(ProtocolError):
            proto.decode_batch(body)

    def test_batch_lo_above_hi(self):
        los = np.array([9], dtype=np.uint64)
        his = np.array([3], dtype=np.uint64)
        body = struct.pack("<I", 1) + los.tobytes() + his.tobytes()
        with pytest.raises(ProtocolError):
            proto.decode_batch(body)

    def test_range_lo_above_hi(self):
        with pytest.raises(ProtocolError):
            proto.decode_range(struct.pack("<QQ", 10, 2))

    def test_hello_empty_version_range(self):
        with pytest.raises(ProtocolError):
            proto.decode_hello(struct.pack("<BB", 5, 2))

    def test_truncated_bodies(self):
        for decode in (proto.decode_range, proto.decode_point,
                       proto.decode_delete, proto.decode_hello,
                       proto.decode_insert, proto.decode_batch):
            with pytest.raises(ProtocolError):
                decode(b"\x01")

    def test_insert_value_length_mismatch(self):
        body = struct.pack("<QI", 1, 100) + b"short"
        with pytest.raises(ProtocolError):
            proto.decode_insert(body)

    def test_stats_response_garbage(self):
        with pytest.raises(ProtocolError):
            proto.decode_stats_response(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            proto.decode_stats_response(b"[1, 2]")

    def test_random_garbage_never_raises_other_exceptions(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            blob = rng.integers(0, 256, rng.integers(1, 64)).astype(
                np.uint8
            ).tobytes()
            try:
                FrameDecoder().feed(blob)
            except ProtocolError:
                pass  # the only acceptable exception


# ----------------------------------------------------------------------
# Loopback differential
# ----------------------------------------------------------------------
class TestLoopbackDifferential:
    def test_hello_ping_version(self, server):
        with SyncClient(server.host, server.port) as client:
            assert client.version == proto.PROTOCOL_VERSION
            client.ping()

    def test_single_ranges_match_direct_service(self, service, server):
        los, his = zipfian_queries(
            service.keys, 64, 32, UNIVERSE, seed=3
        )
        direct = service.batch_range_empty(los, his)
        with SyncClient(server.host, server.port) as client:
            for i in range(los.size):
                assert client.range_empty(
                    int(los[i]), int(his[i])
                ) == bool(direct[i])

    def test_batch_matches_direct_service(self, service, server):
        los, his = zipfian_queries(
            service.keys, 500, 16, UNIVERSE, skew=0.9, seed=4
        )
        direct = service.batch_range_empty(los, his)
        with SyncClient(server.host, server.port) as client:
            np.testing.assert_array_equal(
                client.batch_range_empty(los, his), direct
            )

    def test_mutations_roundtrip(self, service, server):
        key = int(service.keys[0]) ^ 0x5A5A5A
        with SyncClient(server.host, server.port) as client:
            assert client.get(key) is None
            client.put(key, b"net-value")
            assert client.get(key) == b"net-value"
            assert client.range_empty(key, key) is False
            client.delete(key)
            assert client.get(key) is None

    def test_stats_op_merges_service_and_server(self, server):
        with SyncClient(server.host, server.port) as client:
            snap = client.stats()
        assert snap["mode"] == "thread"
        assert "compaction" in snap and "backlog" in snap["compaction"]
        assert snap["server"]["connections_total"] >= 1
        assert "queries_answered" in snap["server"]

    def test_concurrent_clients_match_direct_service(self, service, server):
        """Several clients hammering at once all get the right verdicts."""
        los, his = zipfian_queries(
            service.keys, 240, 24, UNIVERSE, seed=5
        )
        direct = service.batch_range_empty(los, his)
        failures = []

        def worker(tid):
            sl = slice(tid * 60, (tid + 1) * 60)
            try:
                with SyncClient(server.host, server.port) as client:
                    got = client.batch_range_empty(los[sl], his[sl])
                    if not np.array_equal(got, direct[sl]):
                        failures.append(f"client {tid}: verdict mismatch")
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                failures.append(f"client {tid}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not failures, failures

    def test_pipelined_async_client_matches(self, service, server):
        los, his = zipfian_queries(service.keys, 80, 8, UNIVERSE, seed=6)
        direct = service.batch_range_empty(los, his)

        async def run():
            client = await AsyncClient.connect(server.host, server.port)
            try:
                results = await asyncio.gather(
                    *(client.range_empty(int(los[i]), int(his[i]))
                      for i in range(los.size))
                )
            finally:
                await client.close()
            return results

        results = asyncio.run(run())
        np.testing.assert_array_equal(np.asarray(results), direct)


# ----------------------------------------------------------------------
# Server behaviour
# ----------------------------------------------------------------------
class TestServerBehaviour:
    def test_hello_required_first(self, server):
        sock = socket.create_connection(
            (server.host, server.port), timeout=10
        )
        try:
            sock.sendall(proto.encode_frame(proto.OP_PING, 1))
            frame = FrameDecoder().feed(sock.recv(65536))[0]
            assert frame.status == proto.STATUS_ERROR
            assert sock.recv(65536) == b""  # server hung up
        finally:
            sock.close()

    def test_version_mismatch_rejected(self, server):
        sock = socket.create_connection(
            (server.host, server.port), timeout=10
        )
        try:
            sock.sendall(proto.encode_hello(
                1, min_version=proto.PROTOCOL_VERSION + 1,
                max_version=proto.PROTOCOL_VERSION + 2,
            ))
            frame = FrameDecoder().feed(sock.recv(65536))[0]
            assert frame.status == proto.STATUS_ERROR
            assert b"no common version" in frame.body
        finally:
            sock.close()

    def test_malformed_body_answers_error_and_keeps_connection(self, server):
        with SyncClient(server.host, server.port) as client:
            # Well-framed RANGE op with a 3-byte body: error, not a hang.
            rid = 999
            client.send_raw(proto.encode_frame(proto.OP_RANGE, rid, b"xyz"))
            frame = client._recv(rid, time.monotonic() + 10)
            assert frame.status == proto.STATUS_ERROR
            client.ping()  # the connection survived

    def test_corrupt_stream_drops_connection_but_not_server(self, server):
        before = server.stats()["protocol_errors"]
        with SyncClient(server.host, server.port) as bad:
            # A length prefix beyond MAX_FRAME is unresynchronisable.
            bad.send_raw(struct.pack("<I", proto.MAX_FRAME + 5) + b"junk")
            with pytest.raises(ProtocolError):
                bad.ping()
        # Other clients are unaffected and the error was counted.
        with SyncClient(server.host, server.port) as good:
            good.ping()
        assert server.stats()["protocol_errors"] > before

    def test_garbage_hammer_server_survives(self, server):
        rng = np.random.default_rng(1)
        for _ in range(20):
            sock = socket.create_connection(
                (server.host, server.port), timeout=10
            )
            blob = rng.integers(0, 256, 200).astype(np.uint8).tobytes()
            try:
                sock.sendall(blob)
            finally:
                sock.close()
        with SyncClient(server.host, server.port) as client:
            client.ping()

    def test_inflight_budget_sheds_batches(self, service):
        handle = serve_in_thread(
            service,
            config=ServerConfig(batch_window=0.0, max_inflight=1),
        )
        try:
            los = np.array([1, 2], dtype=np.uint64)
            his = np.array([10, 20], dtype=np.uint64)
            with SyncClient(handle.host, handle.port) as client:
                with pytest.raises(ShedError):
                    client.batch_range_empty(los, his)  # 2 > budget of 1
                # A single query fits the budget and still works.
                assert isinstance(client.range_empty(1, 10), bool)
            stats = handle.stats()
            assert stats["shed_inflight"] >= 2
            assert stats["peak_inflight"] <= 1
        finally:
            handle.stop()

    def test_overload_signal_sheds_queries(self, service):
        # A backlog ceiling of -1 makes the (empty) compaction queue
        # already "over", so every query sheds — deterministically.
        handle = serve_in_thread(
            service,
            config=ServerConfig(batch_window=0.0, max_compaction_backlog=-1),
        )
        try:
            with SyncClient(handle.host, handle.port) as client:
                with pytest.raises(ShedError):
                    client.range_empty(0, 100)
                client.ping()  # control traffic is not shed
            assert handle.stats()["shed_overload"] >= 1
        finally:
            handle.stop()

    def test_batching_window_coalesces(self, service):
        handle = serve_in_thread(
            service, config=ServerConfig(batch_window=20e-3, max_batch=512)
        )
        try:
            n = 40

            async def run():
                client = await AsyncClient.connect(handle.host, handle.port)
                try:
                    await asyncio.gather(
                        *(client.range_empty(i * 1000, i * 1000 + 10)
                          for i in range(n))
                    )
                finally:
                    await client.close()

            asyncio.run(run())
            stats = handle.stats()
            # 40 pipelined queries within a 20ms window coalesce into far
            # fewer engine batches than one-per-query.
            assert stats["batches_executed"] <= n // 4
            assert stats["queries_answered"] >= n
        finally:
            handle.stop()

    def test_stop_is_idempotent_and_refuses_new_queries(self, service):
        handle = serve_in_thread(service, config=ServerConfig())
        handle.stop()
        handle.stop()  # second stop is a no-op
        with pytest.raises((ConnectionRefusedError, OSError)):
            SyncClient(handle.host, handle.port, timeout=2)


# ----------------------------------------------------------------------
# Graceful shutdown through the CLI (subprocess regression test)
# ----------------------------------------------------------------------
class TestServeListenSubprocess:
    def test_sigint_drains_and_exits_cleanly(self, tmp_path):
        repo_src = str(Path(__file__).resolve().parents[1] / "src")
        srv = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--listen", "127.0.0.1:0", "--n", "1500", "--seed", "3",
             "--dir", str(tmp_path / "store")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={"PYTHONPATH": repo_src, "PATH": "/usr/bin:/bin"},
        )
        try:
            line = srv.stdout.readline()
            m = re.search(r"listening on ([\d.]+):(\d+)", line)
            assert m, f"no listen line: {line!r}"
            with SyncClient(m.group(1), int(m.group(2)), timeout=10) as c:
                c.ping()
                assert isinstance(c.range_empty(10, 500), bool)
            srv.send_signal(signal.SIGINT)
            out, _ = srv.communicate(timeout=60)
        finally:
            if srv.poll() is None:
                srv.kill()
                srv.communicate()
        assert srv.returncode == 0, out
        assert "Traceback" not in out, out
        assert "shutdown clean" in out
        # The drain checkpointed the persistent engine before closing.
        assert (tmp_path / "store").exists()


# ----------------------------------------------------------------------
# Load generator plumbing (fast, loopback)
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_open_loop_run_completes_and_records_latency(self, service):
        from repro.net import LoadConfig, run_loadgen

        handle = serve_in_thread(
            service, config=ServerConfig(batch_window=200e-6)
        )
        try:
            cfg = LoadConfig(
                clients=32, connections=2, rate=4000.0, n_requests=400,
                distribution="zipf", seed=9,
            )
            report = run_loadgen(
                handle.host, handle.port, cfg,
                universe=UNIVERSE, keys=service.keys,
            )
        finally:
            handle.stop()
        assert report.sent == 400
        assert report.completed + report.shed + report.errors == 400
        assert report.errors == 0
        assert report.latencies.size == report.completed
        assert report.p50 > 0 and report.p99 >= report.p50
        d = report.to_dict()
        assert d["completed"] == report.completed

    def test_arrivals_and_queries_deterministic(self):
        from repro.net import LoadConfig, generate_arrivals, generate_queries

        keys = np.sort(
            np.random.default_rng(0).integers(
                0, UNIVERSE, 2000, dtype=np.uint64
            )
        )
        cfg = LoadConfig(n_requests=500, arrivals="bursty", seed=5)
        np.testing.assert_array_equal(
            generate_arrivals(cfg), generate_arrivals(cfg)
        )
        a = generate_queries(cfg, UNIVERSE, keys)
        b = generate_queries(cfg, UNIVERSE, keys)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_truncated_run_cancels_stragglers_into_errors(self):
        """Regression: a run whose requests never come back must cancel
        the straggler tasks at teardown and tally them as errors — the
        old code left fired tasks dangling ("Task was destroyed but it
        is pending") and reported ``sent = n_requests`` even though the
        ledger only covered the completed ones, breaking
        ``completed + shed + errors == sent``."""
        from repro.net import LoadConfig, loadgen
        from repro.net import protocol as proto

        async def scenario():
            async def black_hole(reader, writer):
                # Answer the hello handshake, then swallow every query.
                decoder = proto.FrameDecoder()
                try:
                    while True:
                        data = await reader.read(65536)
                        if not data:
                            break
                        for frame in decoder.feed(data):
                            if frame.op == proto.OP_HELLO:
                                writer.write(proto.encode_hello_response(
                                    frame.request_id, proto.PROTOCOL_VERSION
                                ))
                                await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                finally:
                    writer.close()

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            cfg = LoadConfig(
                clients=8, connections=2, rate=50_000.0, n_requests=40,
                distribution="uniform", seed=3, timeout=0.5,
            )
            try:
                return await loadgen.run_async(
                    host, port, cfg, universe=UNIVERSE
                )
            finally:
                server.close()
                await server.wait_closed()

        report = asyncio.run(scenario())
        assert report.sent == 40
        assert report.completed == 0 and report.shed == 0
        assert report.errors == 40
        assert report.completed + report.shed + report.errors == report.sent
        assert report.latencies.size == 0

    def test_bursty_arrivals_cluster(self):
        from repro.net import LoadConfig, generate_arrivals

        cfg = LoadConfig(
            n_requests=4000, rate=4000.0, arrivals="bursty",
            burst_factor=8.0, burst_period=0.25, seed=2,
        )
        times = generate_arrivals(cfg)
        gaps = np.diff(times)
        # On/off modulation: the dense phase has much smaller gaps than
        # the sparse phase, so the gap distribution is strongly bimodal.
        assert np.percentile(gaps, 90) > 4 * np.percentile(gaps, 10)
