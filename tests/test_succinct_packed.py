"""Unit and property tests for PackedIntVector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.succinct.packed import PackedIntVector


class TestConstruction:
    def test_empty(self):
        pv = PackedIntVector(7, [])
        assert len(pv) == 0
        assert pv.size_in_bits == 0

    def test_width_zero_stores_zeros(self):
        pv = PackedIntVector(0, [0, 0, 0])
        assert len(pv) == 3
        assert pv[2] == 0
        assert pv.size_in_bits == 0

    def test_width_zero_rejects_nonzero(self):
        with pytest.raises(InvalidParameterError):
            PackedIntVector(0, [1])

    def test_value_too_wide_rejected(self):
        with pytest.raises(InvalidParameterError):
            PackedIntVector(3, [8])

    def test_width_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            PackedIntVector(65, [1])
        with pytest.raises(InvalidParameterError):
            PackedIntVector(-1, [1])

    def test_full_width_64(self):
        values = [0, 1, 2**64 - 1, 2**63]
        pv = PackedIntVector(64, values)
        assert [pv[i] for i in range(4)] == values


class TestAccess:
    def test_straddling_word_boundaries(self):
        # Width 7 means cells straddle the 64-bit boundary regularly.
        values = list(range(100))
        pv = PackedIntVector(7, values)
        assert [pv[i] for i in range(100)] == values

    def test_index_errors(self):
        pv = PackedIntVector(4, [1, 2])
        with pytest.raises(IndexError):
            pv[2]
        with pytest.raises(IndexError):
            pv[-1]

    def test_get_many(self):
        pv = PackedIntVector(9, [5, 300, 511, 0])
        got = pv.get_many([3, 0, 2, 1])
        assert got.tolist() == [0, 5, 511, 300]

    def test_get_many_out_of_range(self):
        pv = PackedIntVector(4, [1])
        with pytest.raises(IndexError):
            pv.get_many([1])

    def test_iteration(self):
        values = [3, 1, 4, 1, 5]
        assert list(PackedIntVector(4, values)) == values

    def test_size_in_bits(self):
        assert PackedIntVector(13, list(range(10))).size_in_bits == 130


class TestPropertyRoundTrip:
    @given(
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, width, data):
        limit = 2**width - 1
        values = data.draw(
            st.lists(st.integers(min_value=0, max_value=limit), max_size=150)
        )
        pv = PackedIntVector(width, values)
        assert [pv[i] for i in range(len(values))] == values
        if values:
            assert pv.get_many(np.arange(len(values))).tolist() == values
