"""Tests for the ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import main


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


COMMON = ["--n", "2000", "--universe-bits", "40", "--seed", "7"]


class TestDatasetCommand:
    @pytest.mark.parametrize("name", ["uniform", "books", "osm", "fb", "normal"])
    def test_describes_each_dataset(self, name):
        code, out = run_cli(["dataset", "--dataset", name] + COMMON)
        assert code == 0
        assert "keys" in out and "2,000" in out

    def test_deterministic(self):
        _, a = run_cli(["dataset"] + COMMON)
        _, b = run_cli(["dataset"] + COMMON)
        assert a == b


class TestFprCommand:
    def test_grafite_uncorrelated(self):
        code, out = run_cli(
            ["fpr", "--filter", "Grafite", "--queries", "200"] + COMMON
        )
        assert code == 0
        assert "FPR" in out and "query time" in out

    def test_correlated_degree(self):
        code, out = run_cli(
            ["fpr", "--filter", "Bucketing", "--workload", "correlated",
             "--degree", "1.0", "--queries", "100"] + COMMON
        )
        assert code == 0
        assert "(D=1.0)" in out

    def test_sample_dependent_filter(self):
        code, out = run_cli(
            ["fpr", "--filter", "Proteus", "--queries", "100"] + COMMON
        )
        assert code == 0

    def test_unknown_filter_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["fpr", "--filter", "Nope"] + COMMON)


class TestAttackCommand:
    def test_attack_grafite(self):
        code, out = run_cli(
            ["attack", "--filter", "Grafite", "--rounds", "2",
             "--queries-per-round", "50"] + COMMON
        )
        assert code == 0
        assert "round 1" in out and "amplification" in out

    def test_attack_heuristic_locks_on(self):
        code, out = run_cli(
            ["attack", "--filter", "Bucketing", "--rounds", "2",
             "--queries-per-round", "50", "--bits-per-key", "12"] + COMMON
        )
        assert code == 0
        # Bucketing under key-adjacent probes: round FPRs near 1.
        round1 = next(l for l in out.splitlines() if "round 1" in l)
        assert float(round1.split("|")[1].strip()) > 0.5


class TestTable1Command:
    def test_prints_paper_parameters(self):
        code, out = run_cli(["table1"])
        assert code == 0
        assert "Grafite" in out and "Lower bound" in out

    def test_custom_parameters(self):
        code, out = run_cli(
            ["table1", "--n", "1000", "--range-size", "32", "--eps", "0.1"]
        )
        assert code == 0
        assert "eps=0.1" in out


class TestEngineCommand:
    ENGINE_ARGS = ["engine", "--n", "1000", "--batches", "2", "--batch-size", "200",
                   "--writes-per-batch", "50", "--memtable-limit", "128"] + COMMON

    def test_mixed_workload_in_memory(self):
        code, out = run_cli(self.ENGINE_ARGS)
        assert code == 0
        assert "batch probes" in out and "reads performed / avoided" in out
        assert "in-memory" in out

    def test_unfiltered_engine(self):
        code, out = run_cli(self.ENGINE_ARGS + ["--filter", "none"])
        assert code == 0
        assert "runs (filter bits)" in out

    def test_persistent_engine(self, tmp_path):
        code, out = run_cli(self.ENGINE_ARGS + ["--dir", str(tmp_path / "db")])
        assert code == 0
        assert str(tmp_path / "db") in out
        assert (tmp_path / "db" / "MANIFEST.json").exists()


class TestScrubCommand:
    ENGINE_ARGS = TestEngineCommand.ENGINE_ARGS

    def build_db(self, tmp_path):
        directory = tmp_path / "db"
        code, _ = run_cli(self.ENGINE_ARGS + ["--dir", str(directory)])
        assert code == 0
        return directory

    def test_clean_directory_verifies(self, tmp_path):
        directory = self.build_db(tmp_path)
        code, out = run_cli(["scrub", "--dir", str(directory)])
        assert code == 0
        assert "intact" in out
        assert "ok=true" in out

    def test_flipped_block_byte_fails_scrub_and_names_the_run(self, tmp_path):
        directory = self.build_db(tmp_path)
        victim = max(directory.glob("shard-*/*.sst"), key=lambda p: p.stat().st_size)
        buf = bytearray(victim.read_bytes())
        # Flip one byte mid-file — inside a column covered by a v4
        # per-block crc, far past the header and checksum arrays.
        buf[len(buf) // 2] ^= 0xFF
        victim.write_bytes(bytes(buf))

        code, out = run_cli(["scrub", "--dir", str(directory)])
        assert code == 1
        assert "CORRUPT" in out
        assert victim.name in out  # the report names the damaged file

    def test_json_report_counts_corrupt_runs(self, tmp_path):
        import json

        directory = self.build_db(tmp_path)
        victim = max(directory.glob("shard-*/*.sst"), key=lambda p: p.stat().st_size)
        buf = bytearray(victim.read_bytes())
        buf[len(buf) // 2] ^= 0xFF
        victim.write_bytes(bytes(buf))

        code, out = run_cli(["scrub", "--dir", str(directory), "--json"])
        assert code == 1
        report = json.loads(out[: out.rindex("}") + 1])
        assert report["ok"] is False
        assert report["runs_corrupt"] >= 1
        assert any(victim.name in issue for issue in report["errors"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli([])
