"""Tests for the pluggable compaction-policy subsystem.

Four layers:

* policy mechanics — what each policy plans and what executing its
  steps does to the level topology (tiered cascades, leveled slicing
  invariants, the full-merge default reproducing the seed behaviour);
* boundedness — a leveled/tiered step rewrites only its planned inputs,
  measured through the new ``IoStats`` write counters, and a filter
  rebuild on a sliced store goes one slice per step;
* correctness under churn — every policy answers point/range/emptiness
  queries identically to a dict model across flush/compact interleavings
  (the differential harness covers the engine/service stack; this file
  covers the bare store where steps can be single-stepped);
* the flush re-notification regression: a deferred store with a pending
  ``request_compaction`` must fire its ``compaction_hook`` at the next
  flush instead of stranding the request.
"""

import numpy as np
import pytest

from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.lsm.compaction import (
    FullMergePolicy,
    LeveledPolicy,
    TieredPolicy,
    policy_names,
    resolve_policy,
    slice_spans,
)
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTable, merge_entries_iter
from repro.lsm.store import LSMStore

UNIVERSE = 2**24


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=12, max_range_size=64, seed=11)


def make_store(policy, *, mem=64, fanout=3, auto=False, factory=None, **kw):
    return LSMStore(
        UNIVERSE,
        memtable_limit=mem,
        compaction_fanout=fanout,
        filter_factory=factory,
        auto_compact=auto,
        compaction_policy=policy,
        **kw,
    )


def fill(store, keys, value=b"v"):
    for k in keys:
        store.put(int(k), value)


def drain_steps(store):
    """Single-step the store to settlement; returns per-step write deltas."""
    deltas = []
    while store.needs_compaction:
        before = store.stats.entries_compacted
        if not store.compact_step():
            break
        deltas.append(store.stats.entries_compacted - before)
    return deltas


def model_of(entries):
    model = {}
    for k, v in entries:
        model[k] = v
    return model


# ----------------------------------------------------------------------
# Registry / resolution
# ----------------------------------------------------------------------
def test_policy_registry_roundtrip():
    assert policy_names() == ["full", "leveled", "tiered"]
    for name in policy_names():
        policy = resolve_policy(name)
        assert policy.name == name
        again = resolve_policy(policy.to_params())
        assert again.to_params() == policy.to_params()
    assert resolve_policy(None).name == "full"
    leveled = LeveledPolicy(slice_target=123)
    assert resolve_policy(leveled.to_params()).slice_target == 123
    with pytest.raises(InvalidParameterError):
        resolve_policy("lsm-tree")
    with pytest.raises(InvalidParameterError):
        resolve_policy({"name": "nope"})
    with pytest.raises(InvalidParameterError):
        resolve_policy(42)
    with pytest.raises(InvalidParameterError):
        LeveledPolicy(slice_target=0)


# ----------------------------------------------------------------------
# Full merge: the seed behaviour
# ----------------------------------------------------------------------
def test_full_merge_is_single_step_single_bottom():
    store = make_store(FullMergePolicy(), mem=8, fanout=3)
    fill(store, range(0, 100, 3))
    store.flush()
    assert store.needs_compaction
    deltas = drain_steps(store)
    assert len(deltas) == 1  # one monolithic step, exactly the seed merge
    assert store.bottom_run is not None
    assert store.level0_runs == ()
    assert len(store.bottom_run) == len(store)


def test_full_merge_drops_tombstones_and_applies_new_factory():
    store = make_store(None, mem=1000, fanout=2, factory=None)
    fill(store, range(50))
    store.delete(7)
    store.flush()
    store.set_filter_factory(grafite_factory)
    store.request_filter_rebuild()
    drain_steps(store)
    bottom = store.bottom_run
    assert bottom is not None and bottom.filter is not None
    assert store.get(7) is None and store.get(8) == b"v"
    assert all(v is not TOMBSTONE for _, v in bottom.entries())


# ----------------------------------------------------------------------
# Tiered
# ----------------------------------------------------------------------
def test_tiered_merges_one_level_per_step():
    store = make_store(TieredPolicy(), mem=4, fanout=3)
    # 3 flushes fill L0; the step pushes one merged run into L1 — deeper
    # levels only appear as L1 itself reaches the fanout.
    fill(store, range(12))
    store.flush()
    deltas = drain_steps(store)
    assert len(deltas) == 1
    assert len(store.level0_runs) == 0
    assert [len(level) for level in store.levels] == [1]
    # Two more rounds: L1 accumulates; the third L1 run triggers a cascade.
    for base in (100, 200, 300, 400, 500, 600):
        fill(store, range(base, base + 12))
        store.flush()
        drain_steps(store)
    assert store.needs_compaction is False
    # Every key is still visible through the tiers.
    for base in (0, 100, 200, 300, 400, 500, 600):
        assert store.get(base + 5) == b"v"
    # Tombstones survive until a merge owns the oldest data.
    store.delete(5)
    store.flush()
    assert store.get(5) is None


def test_tiered_levels_keep_recency_order():
    store = make_store(TieredPolicy(), mem=2, fanout=2)
    store.put(1, "old")
    store.put(2, "x")      # flush 1
    drain_steps(store)
    store.put(1, "newer")
    store.put(3, "y")      # flush 2
    drain_steps(store)
    store.put(1, "newest")
    store.put(4, "z")      # flush 3
    drain_steps(store)
    assert store.get(1) == "newest"


def test_tiered_request_compaction_converges_to_one_run():
    store = make_store(TieredPolicy(), mem=4, fanout=3)
    for base in range(0, 60, 12):
        fill(store, range(base, base + 12))
        store.flush()
        drain_steps(store)
    assert sum(len(level) for level in store.levels) > 1
    store.request_compaction()
    drain_steps(store)
    assert store.bottom_run is not None
    assert [len(level) for level in store.levels] == [1]


# ----------------------------------------------------------------------
# Leveled: slicing invariants
# ----------------------------------------------------------------------
def leveled_store(slice_target=32, mem=64, fanout=3, factory=None):
    return make_store(
        LeveledPolicy(slice_target=slice_target), mem=mem, fanout=fanout,
        factory=factory,
    )


def assert_slice_invariants(store):
    """Slices are key-sorted and their owning spans tile the universe."""
    assert len(store.levels) <= 1
    if not store.levels:
        return
    slices = store.levels[0]
    spans = slice_spans(slices, store.universe)
    assert spans[0][0] == 0
    assert spans[-1][1] == store.universe - 1
    for (lo_a, hi_a), (lo_b, hi_b) in zip(spans, spans[1:]):
        assert hi_a + 1 == lo_b  # gap-free, non-overlapping tiling
    for run, (lo, hi) in zip(slices, spans):
        bounds = run.key_bounds
        if bounds is None:
            continue  # an emptied span keeps an empty placeholder slice
        assert lo <= bounds[0] and bounds[1] <= hi  # keys inside the span


def test_leveled_first_merge_creates_sliced_level():
    store = leveled_store(slice_target=16, mem=16)
    fill(store, range(0, 640, 5))
    store.flush()
    drain_steps(store)
    assert_slice_invariants(store)
    slices = store.levels[0]
    assert len(slices) > 1
    assert all(len(s) <= 32 for s in slices)
    assert all(s.slice_bounds is not None for s in slices)


def test_leveled_merge_touches_only_overlapping_slices():
    store = leveled_store(slice_target=32, mem=128, fanout=2)
    # Settle a wide sliced level first.
    fill(store, range(0, 4096, 4))
    store.flush()
    drain_steps(store)
    slices_before = {run.uid: run for run in store.levels[0]}
    assert len(slices_before) >= 8
    # Now insert a narrow cluster: only slices owning that band may move.
    fill(store, range(100, 140))
    fill(store, range(2000, 2040))
    store.flush()
    store.request_compaction()
    before = store.stats.entries_compacted
    drain_steps(store)
    touched_entries = store.stats.entries_compacted - before
    assert touched_entries < len(store) / 2, (
        "a clustered L0 push-down rewrote most of the store"
    )
    survivors = [run.uid for run in store.levels[0] if run.uid in slices_before]
    assert survivors, "no slice survived a narrow merge untouched"
    assert_slice_invariants(store)
    # Everything is still queryable.
    assert store.get(100) == b"v" and store.get(2036) == b"v"
    assert store.get(101) == b"v"  # pre-existing key in a touched band
    assert not store.range_empty(2000, 2039)


def test_leveled_tombstones_drop_at_slices():
    store = leveled_store(slice_target=16, mem=8, fanout=2)
    fill(store, range(0, 64, 2))
    store.flush()
    drain_steps(store)
    store.delete(10)
    store.delete(12)
    store.flush()
    store.request_compaction()
    drain_steps(store)
    assert store.get(10) is None and store.get(12) is None
    for level in store.levels:
        for run in level:
            assert all(v is not TOMBSTONE for _, v in run.entries())


def test_leveled_newest_l0_shadows_slices_mid_compaction():
    """Single-stepping between flushes never lets older data resurface."""
    store = leveled_store(slice_target=8, mem=4, fanout=2)
    model = {}
    rng = np.random.default_rng(3)
    for i in range(400):
        k = int(rng.integers(0, 256))
        if rng.random() < 0.2:
            store.delete(k)
            model.pop(k, None)
        else:
            store.put(k, i)
            model[k] = i
        if rng.random() < 0.15:
            store.compact_step()  # interleave single bounded steps
        if rng.random() < 0.05:
            store.flush()
        # Continuous checking: reads race the stepped topology changes.
        probe = int(rng.integers(0, 256))
        assert store.get(probe) == model.get(probe), f"op {i}"
    store.flush()
    drain_steps(store)
    assert_slice_invariants(store)
    got = model_of(store.range_scan(0, UNIVERSE - 1))
    assert got == model


# ----------------------------------------------------------------------
# Partial filter rebuilds (the auto-tune seam)
# ----------------------------------------------------------------------
def test_leveled_filter_rebuild_goes_slice_by_slice():
    store = leveled_store(slice_target=32, mem=512, factory=grafite_factory)
    fill(store, range(0, 2048, 2))
    store.flush()
    store.request_compaction()  # push L0 down even below the fanout
    drain_steps(store)
    slices = store.levels[0]
    assert len(slices) >= 8
    sizes = sorted(len(s) for s in slices)
    store.request_filter_rebuild()
    deltas = drain_steps(store)
    # One bounded step per slice: each delta is one slice's rewrite, so
    # the largest lock hold is a slice, never the shard.
    assert len(deltas) == len(slices)
    assert max(deltas) <= max(sizes)
    assert sum(deltas) == sum(len(s) for s in slices)
    assert_slice_invariants(store)
    # The rebuild converged and left nothing tagged.
    assert not store.stale_filter_uids
    assert not store.needs_compaction


def test_rebuild_skips_runs_already_rewritten_by_merges():
    store = leveled_store(slice_target=16, mem=16, fanout=2, factory=grafite_factory)
    fill(store, range(0, 256, 2))
    store.flush()
    store.request_filter_rebuild()
    # The L0 push-down that runs first consumes the tagged L0 runs, so
    # the rebuild steps afterwards cover only what the merge missed —
    # never a double rewrite.
    drain_steps(store)
    assert not store.stale_filter_uids
    total_written = store.stats.entries_compacted
    assert total_written <= 2 * len(store)  # merge once + at most one rebuild


def test_stale_tags_for_vanished_runs_are_pruned():
    store = make_store(FullMergePolicy(), mem=8, fanout=2)
    fill(store, range(16))
    store.flush()
    store.request_filter_rebuild()
    store.compact()  # rewrites everything, clearing the tags en passant
    assert not store.stale_filter_uids
    assert not store.needs_compaction


# ----------------------------------------------------------------------
# Differential model check across policies (bare store, stepped)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["full", "tiered", "leveled"])
@pytest.mark.parametrize("with_filter", [False, True])
def test_store_matches_model_under_policy(policy, with_filter):
    rng = np.random.default_rng(20260731)
    store = LSMStore(
        4096,
        memtable_limit=16,
        compaction_fanout=3,
        filter_factory=grafite_factory if with_filter else None,
        auto_compact=False,
        compaction_policy=(
            LeveledPolicy(slice_target=24) if policy == "leveled" else policy
        ),
    )
    model = {}
    for i in range(2500):
        roll = rng.random()
        key = int(rng.integers(0, 4096))
        if roll < 0.5:
            store.put(key, i)
            model[key] = i
        elif roll < 0.65:
            store.delete(key)
            model.pop(key, None)
        elif roll < 0.8:
            assert store.get(key) == model.get(key), f"op {i}"
        elif roll < 0.92:
            hi = min(4095, key + int(rng.integers(1, 200)))
            want = not any(key <= k <= hi for k in model)
            assert store.range_empty(key, hi) == want, f"op {i}"
        elif roll < 0.97:
            store.flush()
        else:
            store.compact_step()
    store.flush()
    store.compact()
    assert model_of(store.range_scan(0, 4095)) == model


# ----------------------------------------------------------------------
# The flush re-notification regression (deferred stores)
# ----------------------------------------------------------------------
def test_flush_renotifies_pending_compaction_request():
    """request_compaction() then a flush under auto_compact=False used to
    leave needs_compaction stranded when no engine was watching; flush()
    must fire the compaction hook so an external scheduler hears it."""
    heard = []
    store = make_store(FullMergePolicy(), mem=4, fanout=100, auto=False)
    store.compaction_hook = heard.append
    fill(store, range(4))  # memtable-limit flush, below the fanout
    assert store.level0_runs
    assert not heard  # no pressure yet: fanout 100 is far away
    store.request_compaction()
    fill(store, range(10, 14))  # the next flush must surface the request
    assert heard and heard[-1] is store
    # And the seam an engine wires: the hook drives a scheduler notify.
    from repro.engine import CompactionScheduler

    scheduler = CompactionScheduler()
    store.compaction_hook = lambda s: scheduler.notify(0, s)
    fill(store, range(20, 24))
    assert scheduler.pending_shards == (0,)
    assert scheduler.drain() >= 1
    assert not store.needs_compaction


def test_engine_wires_flush_hook_to_scheduler():
    """Engine-managed shards get the hook automatically: a rebuild
    request surfaces at the next flush even when the flush was not
    driven through an engine mutation."""
    from repro.engine import ShardedEngine

    engine = ShardedEngine(UNIVERSE, num_shards=1, memtable_limit=4,
                           compaction_fanout=100)
    for k in range(4):
        engine.put(k, b"v")
    engine.drain_compactions()
    store = engine.shards[0]
    store.request_compaction()
    # A direct store flush (not routed through the engine) still lands
    # the shard in the engine's queue via the hook.
    for k in range(10, 14):
        store.put(k, b"v")
    assert 0 in engine.scheduler.pending_shards
    assert engine.drain_compactions() >= 1
    assert not store.needs_compaction


# ----------------------------------------------------------------------
# Streaming merge (satellite: heapq k-way, no materialisation)
# ----------------------------------------------------------------------
def test_merge_entries_iter_is_lazy_and_span_clipped():
    new = SSTable([(1, "n1"), (5, "n5"), (9, "n9")], UNIVERSE)
    old = SSTable([(1, "o1"), (3, "o3"), (9, "o9"), (12, "o12")], UNIVERSE)
    stream = merge_entries_iter([new, old], drop_tombstones=False, span=(2, 9))
    assert next(stream) == (3, "o3")  # lazily produced, span-clipped
    assert list(stream) == [(5, "n5"), (9, "n9")]


def test_merge_entries_iter_tombstone_newest_wins():
    new = SSTable([(1, TOMBSTONE), (2, "keep")], UNIVERSE)
    old = SSTable([(1, "old"), (3, "other")], UNIVERSE)
    kept = list(merge_entries_iter([new, old], drop_tombstones=True))
    assert kept == [(2, "keep"), (3, "other")]
    raw = list(merge_entries_iter([new, old], drop_tombstones=False))
    assert raw[0] == (1, TOMBSTONE)


# ----------------------------------------------------------------------
# Deep leveled tree (L2+): budgets, push-downs, placeholder hygiene
# ----------------------------------------------------------------------
def deep_policy(slice_target=32, level_fanout=4, l1_budget=64):
    return LeveledPolicy(
        slice_target=slice_target,
        level_fanout=level_fanout,
        l1_budget=l1_budget,
    )


def assert_levels_tile(store):
    """Every deep level's owning spans must partition [0, universe)."""
    for li, level in enumerate(store.levels):
        if not level:
            continue
        spans = slice_spans(level, store.universe)
        assert spans[0][0] == 0, f"L{li + 1} spans start at {spans[0]}"
        assert spans[-1][1] == store.universe - 1, f"L{li + 1} spans end early"
        for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
            assert prev_hi + 1 == lo, f"gap/overlap in L{li + 1} at {prev_hi}"


def test_deep_params_roundtrip_and_validation():
    policy = LeveledPolicy(slice_target=64, level_fanout=4, l1_budget=256)
    again = resolve_policy(policy.to_params())
    assert again.to_params() == policy.to_params()
    assert policy.level_budget(1) == 256
    assert policy.level_budget(3) == 256 * 16
    # No l1_budget means *unbudgeted*: the exact pre-deep topology.
    assert LeveledPolicy(slice_target=64).level_budget(1) is None
    assert LeveledPolicy(slice_target=64).to_params()["l1_budget"] is None
    with pytest.raises(InvalidParameterError):
        LeveledPolicy(level_fanout=1)
    with pytest.raises(InvalidParameterError):
        LeveledPolicy(l1_budget=0)


def test_unbudgeted_leveled_keeps_single_sliced_level():
    """Backward compatibility: without a budget the tree never grows L2,
    no matter how much data accumulates."""
    store = make_store(LeveledPolicy(slice_target=32), mem=16, fanout=3)
    fill(store, range(0, 6000, 3))
    store.flush()
    drain_steps(store)
    assert len(store.levels) == 1
    assert_levels_tile(store)


def test_budget_pressure_grows_deep_levels_within_budgets():
    store = make_store(deep_policy(), mem=16, fanout=3)
    rng = np.random.default_rng(17)
    fill(store, np.unique(rng.integers(0, UNIVERSE, 1500)))
    store.flush()
    drain_steps(store)
    assert len(store.levels) >= 2, "budget pressure never built L2+"
    policy = store.compaction_policy
    for li, level in enumerate(store.levels[:-1]):
        size = sum(len(run) for run in level)
        assert size <= policy.level_budget(li + 1), (
            f"L{li + 1} holds {size} entries over its budget"
        )
    assert_levels_tile(store)
    # level_stats mirrors the same topology, budgets included.
    rows = store.level_stats()
    assert rows[0]["level"] == 0
    for row in rows[1:]:
        if row["entries"]:
            assert row["budget"] == policy.level_budget(row["level"])


def test_pushdown_steps_are_bounded_and_preserve_tiling():
    """Each budget push-down rewrites one victim slice plus only the
    slices it overlaps one level down — never the whole level — and the
    span tiling of every level survives every intermediate step."""
    store = make_store(deep_policy(), mem=16, fanout=3)
    rng = np.random.default_rng(23)
    fill(store, np.unique(rng.integers(0, UNIVERSE, 1200)))
    store.flush()
    total = len(store)
    saw_pushdown = False
    while store.needs_compaction:
        l0_push = bool(store.level0_runs)  # an L0 push may take all of L0
        before = store.stats.entries_compacted
        if not store.compact_step():
            break
        delta = store.stats.entries_compacted - before
        if not l0_push:
            # Budget push-down: one victim slice plus the slices it
            # overlaps one level down — never the whole store.
            saw_pushdown = True
            assert delta < max(1, total // 2), (
                f"a single push-down rewrote {delta} of {total} entries"
            )
        assert_levels_tile(store)
    assert saw_pushdown, "workload never exercised a budget push-down"


def test_deep_pushdowns_coalesce_empty_placeholders():
    """Evacuated slices leave empty placeholders to keep the tiling;
    adjacent placeholders must fuse so a level's run count tracks its
    live data instead of its eviction history."""
    store = make_store(deep_policy(), mem=16, fanout=3)
    rng = np.random.default_rng(29)
    fill(store, np.unique(rng.integers(0, UNIVERSE, 1500)))
    store.flush()
    drain_steps(store)
    for level in store.levels:
        spans = slice_spans(level, store.universe)
        for (a, b), (a_span, b_span) in zip(
            zip(level, level[1:]), zip(spans, spans[1:])
        ):
            adjacent = a_span[1] + 1 == b_span[0]
            assert not (adjacent and len(a) == 0 and len(b) == 0), (
                "two adjacent empty placeholder slices survived coalescing"
            )
    assert_levels_tile(store)


def test_deep_tombstones_survive_until_deepest_level():
    """A delete must go on shadowing older versions below it: tombstones
    may only be dropped by steps whose output is the deepest data."""
    store = make_store(deep_policy(), mem=16, fanout=3)
    rng = np.random.default_rng(31)
    keys = np.unique(rng.integers(0, UNIVERSE, 1200))
    fill(store, keys)
    store.flush()
    drain_steps(store)  # push a population to the deep levels
    victims = [int(k) for k in keys[::7]]
    for k in victims:
        store.delete(k)
    store.flush()
    drain_steps(store)
    for k in victims:
        assert store.get(k) is None
        assert store.range_empty(k, k)
    survivors = {int(k) for k in keys} - set(victims)
    for k in list(survivors)[::97]:
        assert not store.range_empty(k, k)


def test_deep_store_matches_model_under_churn():
    rng = np.random.default_rng(20260808)
    store = LSMStore(
        4096,
        memtable_limit=16,
        compaction_fanout=3,
        filter_factory=None,
        auto_compact=False,
        compaction_policy=LeveledPolicy(
            slice_target=24, level_fanout=2, l1_budget=48
        ),
    )
    model = {}
    for i in range(2500):
        roll = rng.random()
        key = int(rng.integers(0, 4096))
        if roll < 0.5:
            store.put(key, i)
            model[key] = i
        elif roll < 0.65:
            store.delete(key)
            model.pop(key, None)
        elif roll < 0.8:
            assert store.get(key) == model.get(key), f"op {i}"
        elif roll < 0.92:
            hi = min(4095, key + int(rng.integers(1, 200)))
            want = not any(key <= k <= hi for k in model)
            assert store.range_empty(key, hi) == want, f"op {i}"
        elif roll < 0.97:
            store.flush()
        else:
            store.compact_step()
    store.flush()
    store.compact()
    assert model_of(store.range_scan(0, 4095)) == model
    assert len(store.levels) >= 2, "churn never exercised the deep tree"
