"""Tests for the measurement harness, theory formulas, and reporting."""

import math

import numpy as np
import pytest

from repro.analysis.fpr import measure_fpr, measure_fpr_checked
from repro.analysis.harness import (
    FILTERS,
    HEURISTIC_FILTERS,
    ROBUST_FILTERS,
    FilterConfig,
    build_filter,
    run_experiment,
    run_grid,
)
from repro.analysis.report import format_fpr, format_series, format_speed_table, format_table
from repro.analysis.theory import (
    bucketing_bits,
    goswami_bits,
    grafite_bits,
    grafite_fpr_bound,
    lower_bound_bits,
    rosetta_bits,
    snarf_bits,
    surf_bits,
    table1,
)
from repro.analysis.timing import time_construction, time_queries
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.workloads.datasets import uniform
from repro.workloads.queries import nonempty_queries, uncorrelated_queries

UNIVERSE = 2**40
KEYS = uniform(1500, universe=UNIVERSE, seed=0)
SAMPLE = uncorrelated_queries(32, 16, UNIVERSE, keys=KEYS, seed=9)


class TestFprMeasurement:
    def test_empty_queries_give_fpr(self):
        g = Grafite(KEYS, UNIVERSE, eps=0.05, max_range_size=16, seed=1)
        queries = uncorrelated_queries(500, 16, UNIVERSE, keys=KEYS, seed=2)
        result = measure_fpr(g, queries)
        assert result.trials == 500
        assert 0 <= result.fpr <= 0.05 * 3 + 0.01

    def test_checked_detects_true_positives(self):
        g = Grafite(KEYS, UNIVERSE, eps=0.01, max_range_size=16, seed=1)
        queries = nonempty_queries(KEYS, 100, 16, UNIVERSE, seed=3)
        result = measure_fpr_checked(g, queries, KEYS)
        assert result.true_positives == 100
        assert result.false_negatives == 0

    def test_checked_counts_fp_only_on_empty(self):
        g = Grafite(KEYS, UNIVERSE, eps=0.5, max_range_size=4, seed=0)
        empty = uncorrelated_queries(50, 4, UNIVERSE, keys=KEYS, seed=4)
        full = nonempty_queries(KEYS, 50, 4, UNIVERSE, seed=5)
        result = measure_fpr_checked(g, empty + full, KEYS)
        assert result.trials == 100
        assert result.true_positives == 50


class TestTiming:
    def test_query_timing_positive(self):
        g = Grafite(KEYS, UNIVERSE, eps=0.1, seed=0)
        t = time_queries(g, SAMPLE)
        assert t.ns_per_op > 0
        assert t.operations == len(SAMPLE)

    def test_construction_timing(self):
        filt, t = time_construction(
            lambda: Grafite(KEYS, UNIVERSE, eps=0.1, seed=0), repeats=2
        )
        assert filt.key_count == KEYS.size
        assert t.total_seconds > 0


class TestHarness:
    def test_registry_covers_paper_figures(self):
        for name in ROBUST_FILTERS + HEURISTIC_FILTERS:
            assert name in FILTERS

    def test_build_filter_unknown(self):
        cfg = FilterConfig(KEYS, UNIVERSE, 16, 16)
        with pytest.raises(InvalidParameterError):
            build_filter("Nope", cfg)

    @pytest.mark.parametrize("name", sorted(FILTERS))
    def test_every_registered_filter_builds_and_answers(self, name):
        cfg = FilterConfig(
            KEYS, UNIVERSE, bits_per_key=16, max_range_size=16,
            sample_queries=SAMPLE, seed=0,
        )
        filt = build_filter(name, cfg)
        assert filt.key_count == KEYS.size
        for key in KEYS[:20]:
            key = int(key)
            hi = min(UNIVERSE - 1, key + 15)
            assert filt.may_contain_range(key, hi), name

    def test_run_experiment_row(self):
        cfg = FilterConfig(KEYS, UNIVERSE, 14, 16, sample_queries=SAMPLE)
        queries = uncorrelated_queries(100, 16, UNIVERSE, keys=KEYS, seed=6)
        row = run_experiment("Grafite", cfg, queries, dataset="uniform", workload="uncorrelated")
        assert row.filter_name == "Grafite"
        assert row.key_count == KEYS.size
        assert row.query_ns > 0
        assert row.build_ns_per_key > 0
        assert 0 <= row.fpr <= 1
        assert row.bits_per_key_actual > 0

    def test_run_grid(self):
        cfg = FilterConfig(KEYS, UNIVERSE, 16, 16, sample_queries=SAMPLE)
        queries = uncorrelated_queries(50, 16, UNIVERSE, keys=KEYS, seed=7)
        rows = run_grid(["Grafite", "Bucketing"], cfg, queries)
        assert [r.filter_name for r in rows] == ["Grafite", "Bucketing"]


class TestTheory:
    def test_grafite_below_goswami_below_trivial_gap(self):
        n, L, eps = 10**6, 2**10, 0.01
        assert grafite_bits(n, L, eps) < goswami_bits(n, L, eps)
        assert grafite_bits(n, L, eps) >= lower_bound_bits(n, L, eps) - n

    def test_rosetta_space_worse_beyond_crossover(self):
        n, L, eps = 10**6, 2**10, 0.01
        # L >= 2^3.36 eps here, so Rosetta's 1.44x loses (paper §5).
        assert rosetta_bits(n, L, eps) > grafite_bits(n, L, eps)

    def test_surf_min_ten_bits_per_key(self):
        assert surf_bits(1000, 0, 0) == 10_000

    def test_snarf_formula(self):
        assert snarf_bits(1000, 64) == pytest.approx(1000 * 6 + 2400)

    def test_bucketing_formula(self):
        assert bucketing_bits(100, 2**20, 64) == pytest.approx(
            100 * math.log2(2**20 / (100 * 64)) + 200
        )

    def test_grafite_fpr_bound_corollary(self):
        assert grafite_fpr_bound(32, 12) == pytest.approx(32 / 2**10)
        assert grafite_fpr_bound(2**30, 10) == 1.0
        assert grafite_fpr_bound(1, 2) == 1.0

    def test_table1_rows(self):
        rows = table1(10**5, 2**40, 2**10, 0.01, surf_internal_nodes=5000, bucketing_t=10**4, bucketing_s=64)
        names = [r.name for r in rows]
        for expected in ("Grafite", "Rosetta", "SuRF", "SNARF", "Bucketing", "Lower bound"):
            assert expected in names
        grafite_row = next(r for r in rows if r.name == "Grafite")
        lower_row = next(r for r in rows if r.name == "Lower bound")
        assert grafite_row.space_bits >= lower_row.space_bits - 10**5

    def test_table1_unknown_cells_stay_none(self):
        rows = table1(10**5, 2**40, 2**10, 0.01)
        proteus = next(r for r in rows if r.name == "Proteus")
        assert proteus.space_bits is None


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xy", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_format_fpr(self):
        assert format_fpr(0) == "0"
        assert format_fpr(0.0123) == "1.23e-02"

    def test_format_speed_table_orders_by_speed(self):
        text = format_speed_table([("Slow", 1000.0), ("Fast", 10.0)], "times")
        lines = text.splitlines()
        assert lines.index([l for l in lines if "Fast" in l][0]) < lines.index(
            [l for l in lines if "Slow" in l][0]
        )
        assert "(100.00 x)" in text

    def test_format_series(self):
        text = format_series("x", [1, 2], [("s1", [0.5, 0.25]), ("s2", [1, 2])])
        assert "s1" in text and "s2" in text
        assert len(text.splitlines()) == 4
