"""Tests for the Fast Succinct Trie (LOUDS-Sparse)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.filters.fst import FastSuccinctTrie, distinguishing_prefixes


def naive_first_leaf_reaching(prefixes, target, width):
    """Reference: first prefix whose 0xFF-padded extension >= target."""
    for i, p in enumerate(sorted(prefixes)):
        padded_max = p + b"\xff" * (width - len(p))
        if padded_max >= target:
            return p
    return None


class TestDistinguishingPrefixes:
    def test_basic(self):
        keys = [b"\x01\x02\x03", b"\x01\x02\x07", b"\x05\x00\x00"]
        prefixes = distinguishing_prefixes(keys)
        assert prefixes == [b"\x01\x02\x03", b"\x01\x02\x07", b"\x05"]

    def test_single_key(self):
        assert distinguishing_prefixes([b"\x09\x09"]) == [b"\x09"]

    def test_result_is_prefix_free(self):
        keys = sorted({bytes([a, b]) for a in range(4) for b in range(4)})
        prefixes = distinguishing_prefixes(keys)
        for i, p in enumerate(prefixes):
            for j, q in enumerate(prefixes):
                if i != j:
                    assert not q.startswith(p)


class TestConstruction:
    def test_empty(self):
        trie = FastSuccinctTrie([])
        assert trie.num_leaves == 0
        assert trie.first_leaf_reaching(b"\x00") is None

    def test_rejects_unsorted(self):
        with pytest.raises(InvalidParameterError):
            FastSuccinctTrie([b"\x02", b"\x01"])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            FastSuccinctTrie([b"\x01", b"\x01"])

    def test_rejects_prefix_violation(self):
        with pytest.raises(InvalidParameterError):
            FastSuccinctTrie([b"\x01", b"\x01\x02"])

    def test_rejects_empty_string(self):
        with pytest.raises(InvalidParameterError):
            FastSuccinctTrie([b""])

    def test_counts(self):
        trie = FastSuccinctTrie([b"\x01\x01", b"\x01\x02", b"\x02"])
        assert trie.num_leaves == 3
        # root (edges 01, 02) + node for prefix 01 (edges 01, 02)
        assert trie.num_nodes == 2
        assert trie.num_edges == 4
        assert trie.size_in_bits > 0


class TestLeafSearch:
    def test_exact_and_between(self):
        trie = FastSuccinctTrie([b"\x01\x05", b"\x03", b"\x07\x00"])
        # target below everything
        leaf, prefix = trie.first_leaf_reaching(b"\x00\x00")
        assert prefix == b"\x01\x05"
        # target exactly on a stored prefix
        leaf, prefix = trie.first_leaf_reaching(b"\x03\x00")
        assert prefix == b"\x03"
        # target above everything
        assert trie.first_leaf_reaching(b"\x07\x01") is None

    def test_backtracking_path(self):
        # target shares first byte with an early subtree but exceeds it
        trie = FastSuccinctTrie([b"\x01\x01", b"\x01\x02", b"\x05\x05"])
        leaf, prefix = trie.first_leaf_reaching(b"\x01\x03")
        assert prefix == b"\x05\x05"

    def test_contains_prefix_of(self):
        trie = FastSuccinctTrie([b"\x01", b"\x02\x05"])
        assert trie.contains_prefix_of(b"\x01\xaa\xbb")
        assert trie.contains_prefix_of(b"\x02\x05")
        assert not trie.contains_prefix_of(b"\x02\x06")
        assert not trie.contains_prefix_of(b"\x03")

    def test_leaf_key_index_round_trip(self):
        strings = [b"\x00\x01", b"\x00\x02", b"\x09"]
        trie = FastSuccinctTrie(strings)
        seen = set()
        for target in strings:
            leaf, prefix = trie.first_leaf_reaching(target)
            seen.add(trie.leaf_key_index(leaf))
            assert strings[trie.leaf_key_index(leaf)] == prefix
        assert seen == {0, 1, 2}

    @given(
        st.sets(
            st.integers(min_value=0, max_value=2**24 - 1), min_size=1, max_size=60
        ),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_reference(self, raw_keys, data):
        width = 3
        keys = sorted(int(k).to_bytes(width, "big") for k in raw_keys)
        prefixes = distinguishing_prefixes(keys)
        trie = FastSuccinctTrie(prefixes)
        targets = data.draw(
            st.lists(st.integers(min_value=0, max_value=2**24 - 1), min_size=1, max_size=15)
        )
        targets += list(raw_keys)[:5]
        for t in targets:
            target = int(t).to_bytes(width, "big")
            expected = naive_first_leaf_reaching(prefixes, target, width)
            got = trie.first_leaf_reaching(target)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got[1] == expected
