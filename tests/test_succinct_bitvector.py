"""Unit and property tests for the BitVector substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.succinct.bitvector import BitVector, popcount_words


class TestConstruction:
    def test_empty_vector(self):
        bv = BitVector(0)
        assert len(bv) == 0
        assert bv.count() == 0

    def test_negative_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            BitVector(-1)

    def test_all_bits_start_clear(self):
        bv = BitVector(130)
        assert bv.count() == 0
        assert not any(bv[i] for i in range(130))

    def test_from_positions(self):
        bv = BitVector.from_positions(100, [0, 63, 64, 99])
        assert bv.count() == 4
        assert bv[0] and bv[63] and bv[64] and bv[99]
        assert not bv[1] and not bv[65]

    def test_from_positions_duplicates_idempotent(self):
        bv = BitVector.from_positions(10, [3, 3, 3])
        assert bv.count() == 1

    def test_from_positions_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            BitVector.from_positions(10, [10])
        with pytest.raises(InvalidParameterError):
            BitVector.from_positions(10, [-1])

    def test_from_bools(self):
        flags = [True, False, True, True, False]
        bv = BitVector.from_bools(flags)
        assert len(bv) == 5
        assert [bv[i] for i in range(5)] == flags


class TestBitAccess:
    def test_set_and_get(self):
        bv = BitVector(200)
        bv.set(150)
        assert bv[150]
        bv.set(150, False)
        assert not bv[150]

    def test_index_errors(self):
        bv = BitVector(10)
        with pytest.raises(IndexError):
            bv[10]
        with pytest.raises(IndexError):
            bv.set(-1)

    def test_set_many_and_get_many(self):
        bv = BitVector(500)
        bv.set_many([1, 100, 499])
        got = bv.get_many([0, 1, 100, 499, 498])
        assert got.tolist() == [False, True, True, True, False]

    def test_get_many_empty(self):
        bv = BitVector(10)
        assert bv.get_many([]).size == 0


class TestAnyInRange:
    def test_single_word_window(self):
        bv = BitVector.from_positions(64, [10])
        assert bv.any_in_range(10, 10)
        assert bv.any_in_range(0, 63)
        assert not bv.any_in_range(11, 63)
        assert not bv.any_in_range(0, 9)

    def test_multi_word_window(self):
        bv = BitVector.from_positions(300, [130])
        assert bv.any_in_range(0, 299)
        assert bv.any_in_range(128, 192)
        assert not bv.any_in_range(0, 129)
        assert not bv.any_in_range(131, 299)

    def test_inverted_range_is_empty(self):
        bv = BitVector.from_positions(64, [5])
        assert not bv.any_in_range(7, 3)

    def test_clamps_to_length(self):
        bv = BitVector.from_positions(10, [9])
        assert bv.any_in_range(0, 10_000)

    @given(
        st.integers(min_value=1, max_value=400),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, length, data):
        positions = data.draw(
            st.lists(st.integers(min_value=0, max_value=length - 1), max_size=20)
        )
        lo = data.draw(st.integers(min_value=0, max_value=length - 1))
        hi = data.draw(st.integers(min_value=0, max_value=length - 1))
        bv = BitVector.from_positions(length, positions)
        expected = any(lo <= p <= hi for p in positions)
        assert bv.any_in_range(lo, hi) == expected


class TestAggregates:
    def test_iter_set_positions(self):
        positions = [0, 5, 63, 64, 127, 200]
        bv = BitVector.from_positions(256, positions)
        assert list(bv.iter_set_positions()) == positions

    def test_popcount_words(self):
        words = np.array([0, 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000000], dtype=np.uint64)
        assert popcount_words(words).tolist() == [0, 1, 64, 1]

    def test_popcount_rejects_wrong_dtype(self):
        with pytest.raises(InvalidParameterError):
            popcount_words(np.array([1, 2], dtype=np.int32))

    @given(st.lists(st.booleans(), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_naive(self, flags):
        bv = BitVector.from_bools(flags)
        assert bv.count() == sum(flags)
        assert list(bv.iter_set_positions()) == [i for i, f in enumerate(flags) if f]
