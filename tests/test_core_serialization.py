"""Tests for the versioned binary serialisation of Grafite and Bucketing."""

import numpy as np
import pytest

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.core.serialization import (
    bucketing_from_bytes,
    bucketing_to_bytes,
    grafite_from_bytes,
    grafite_to_bytes,
)
from repro.errors import InvalidParameterError

UNIVERSE = 2**40
KEYS = np.unique(np.random.default_rng(0).integers(0, UNIVERSE, 3000, dtype=np.uint64))


def probes():
    out = [(int(k) - 3, int(k) + 3) for k in KEYS[:60]]
    rng = np.random.default_rng(1)
    out += [(int(x), int(x) + 31) for x in rng.integers(0, UNIVERSE - 32, 200, dtype=np.uint64)]
    return [(max(0, lo), min(UNIVERSE - 1, hi)) for lo, hi in out]


class TestGrafiteRoundTrip:
    def test_answers_identical(self):
        original = Grafite(KEYS, UNIVERSE, eps=0.02, max_range_size=32, seed=5)
        clone = grafite_from_bytes(grafite_to_bytes(original))
        for lo, hi in probes():
            assert clone.may_contain_range(lo, hi) == original.may_contain_range(lo, hi)
        assert clone.size_in_bits == original.size_in_bits
        assert clone.key_count == original.key_count
        assert clone.reduced_universe == original.reduced_universe

    def test_counting_identical(self):
        original = Grafite(KEYS, UNIVERSE, eps=0.02, max_range_size=64, seed=6)
        clone = grafite_from_bytes(grafite_to_bytes(original))
        for lo, hi in probes()[:50]:
            assert clone.count_range(lo, hi) == original.count_range(lo, hi)

    def test_exact_mode_round_trip(self):
        original = Grafite(range(0, 1000, 37), 1000, eps=1e-9, max_range_size=8, seed=0)
        assert original.is_exact
        clone = grafite_from_bytes(grafite_to_bytes(original))
        assert clone.is_exact
        for k in range(0, 1000, 37):
            assert clone.may_contain(k)
        assert not clone.may_contain_range(1, 36)

    def test_empty_filter_round_trip(self):
        original = Grafite([], UNIVERSE, eps=0.1)
        clone = grafite_from_bytes(grafite_to_bytes(original))
        assert clone.key_count == 0
        assert not clone.may_contain_range(0, 100)

    def test_bad_magic_rejected(self):
        with pytest.raises(InvalidParameterError):
            grafite_from_bytes(b"XXXX" + b"\x00" * 50)

    def test_bad_version_rejected(self):
        blob = bytearray(grafite_to_bytes(Grafite([1], 100, eps=0.5, seed=0)))
        blob[4] = 0xFF
        with pytest.raises(InvalidParameterError):
            grafite_from_bytes(bytes(blob))

    def test_format_is_compact(self):
        original = Grafite(KEYS, UNIVERSE, eps=0.02, max_range_size=32, seed=5)
        blob = grafite_to_bytes(original)
        # Serialised size ~ payload bits / 8 plus small headers.
        assert len(blob) < original.size_in_bits / 8 * 1.5 + 256


class TestBucketingRoundTrip:
    def test_answers_identical(self):
        original = Bucketing(KEYS, UNIVERSE, bits_per_key=12)
        clone = bucketing_from_bytes(bucketing_to_bytes(original))
        for lo, hi in probes():
            assert clone.may_contain_range(lo, hi) == original.may_contain_range(lo, hi)
        assert clone.bucket_size == original.bucket_size
        assert clone.size_in_bits == original.size_in_bits

    def test_bad_magic_rejected(self):
        with pytest.raises(InvalidParameterError):
            bucketing_from_bytes(b"GRFT" + b"\x00" * 50)

    def test_cross_format_rejected(self):
        grafite_blob = grafite_to_bytes(Grafite([1], 100, eps=0.5, seed=0))
        with pytest.raises(InvalidParameterError):
            bucketing_from_bytes(grafite_blob)
