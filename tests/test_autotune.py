"""Auto-tuner policy, churn-exactness, and adversarial-serving tests.

Three layers:

* policy unit tests — the decision table (robust fallback, probation
  with exponential backoff, bits escalation, heuristic adoption) on a
  synthetic engine;
* a churn test — the standing exactness requirement: while the tuner
  flips backends across flushes and compactions, every batched probe
  must keep matching a sorted-array oracle bit for bit;
* the new scenario class — the §6.7 adaptive adversary replayed against
  the *served engine* (not a bare filter): a heuristic backend bleeds
  wasted reads, the robust default does not, and the auto-tuned engine
  converges to the robust default under fire.
"""

import numpy as np
import pytest

from repro.engine import AutoTunePolicy, AutoTuner, RangeQueryService, ShardedEngine
from repro.errors import InvalidParameterError
from repro.filters.registry import FilterSpec
from repro.workloads.adversary import AdaptiveAdversary

# Sparse universe: SNARF's learned slots are then coarser than the
# adversary's key-hugging offset, which is the regime where the paper's
# Figure 3 collapse (and thus the tuner's fallback) actually manifests.
UNIVERSE = 2**34
SEED = 77


def _keys(n=8000, seed=SEED):
    rng = np.random.default_rng(seed)
    return np.unique(rng.integers(0, UNIVERSE, n, dtype=np.uint64))


def _empty_ranges_near_keys(keys, count, width, seed):
    """Correlated (adversarial) empty ranges hugging keys from the right."""
    rng = np.random.default_rng(seed)
    picks = keys[rng.integers(0, keys.size, count * 2)]
    los = (picks + 1).astype(np.uint64)
    his = np.minimum(los + width - 1, UNIVERSE - 1)
    idx = np.minimum(np.searchsorted(keys, los), keys.size - 1)
    hit = keys[idx] >= los
    hit &= keys[idx] <= his
    los, his = los[~hit], his[~hit]
    return los[:count], his[:count]


def _uncorrelated_ranges(keys, count, width, seed):
    rng = np.random.default_rng(seed)
    los = rng.integers(0, UNIVERSE - width, count, dtype=np.uint64)
    his = los + width - 1
    return los, his


def _oracle_empty(keys, los, his):
    idx = np.minimum(np.searchsorted(keys, los), keys.size - 1)
    hit = (keys[idx] >= los) & (keys[idx] <= his)
    return ~hit


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(InvalidParameterError):
        AutoTunePolicy(robust_backend="surf")  # not adversarial-safe
    with pytest.raises(InvalidParameterError):
        AutoTunePolicy(min_window=0)
    with pytest.raises(InvalidParameterError):
        AutoTunePolicy(robust_fp_threshold=0.01, heuristic_fp_threshold=0.05)


def test_attach_requires_spec_for_bare_factory_engines():
    """A bare callable factory has no backend identity; the tuner must
    demand one instead of fabricating a 'grafite' current state."""
    from repro.core.grafite import Grafite

    engine = ShardedEngine(
        UNIVERSE, num_shards=2,
        filter_factory=lambda keys, u: Grafite(keys, u, bits_per_key=12),
    )
    with pytest.raises(InvalidParameterError):
        engine.attach_autotuner(AutoTuner())
    # Naming the mounted backend explicitly is accepted.
    engine.attach_autotuner(
        AutoTuner(base_spec=FilterSpec(backend="grafite", bits_per_key=12))
    )
    assert engine.autotuner.backend_counts() == {"grafite": 2}


def _tuned_engine(backend, *, min_window=128, **policy_kwargs):
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=1024,
        # 16 bits/key puts Grafite's design epsilon (~2e-3 at L=32) under
        # the readoption threshold, so clean traffic can win back the
        # heuristic once probation is served.
        filter_spec=FilterSpec(backend=backend, bits_per_key=16, seed=SEED),
    )
    tuner = AutoTuner(AutoTunePolicy(min_window=min_window, **policy_kwargs))
    engine.attach_autotuner(tuner)
    return engine, tuner


def test_heuristic_falls_back_to_robust_under_correlation():
    keys = _keys()
    engine, tuner = _tuned_engine("snarf")
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    los, his = _empty_ranges_near_keys(keys, 2000, 16, SEED + 1)
    assert engine.batch_range_empty(los, his).all()
    assert tuner.backend_counts() == {"grafite": 2}
    directions = {(d.previous.backend, d.chosen.backend) for d in tuner.decisions}
    assert directions == {("snarf", "grafite")}
    # The rebuild request converges existing runs to the new backend.
    engine.drain_compactions()
    for store in engine.shards:
        assert store.bottom_run is not None
        assert store.bottom_run.filter.name == "Grafite"


def test_probation_blocks_immediate_heuristic_retry():
    keys = _keys()
    engine, tuner = _tuned_engine("snarf")
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    cor_lo, cor_hi = _empty_ranges_near_keys(keys, 1500, 16, SEED + 2)
    assert engine.batch_range_empty(cor_lo, cor_hi).all()
    assert tuner.backend_counts() == {"grafite": 2}
    # Two uncorrelated windows: probation (initial sentence = 2) holds.
    unc_lo, unc_hi = _uncorrelated_ranges(keys, 1500, 16, SEED + 3)
    engine.batch_range_empty(unc_lo, unc_hi)
    assert tuner.backend_counts() == {"grafite": 2}
    engine.batch_range_empty(unc_lo, unc_hi)
    assert tuner.backend_counts() == {"grafite": 2}
    # Probation served: the next clean window readopts the heuristic.
    engine.batch_range_empty(unc_lo, unc_hi)
    assert tuner.backend_counts() == {"snarf": 2}


def test_robust_engine_buys_bits_when_wasteful():
    keys = _keys()
    # A deliberately starved Grafite (4 bits/key at range 256) pays
    # visible false positives even on honest traffic.
    engine = ShardedEngine(
        UNIVERSE, num_shards=1, memtable_limit=8192,
        filter_spec=FilterSpec(
            backend="grafite", bits_per_key=4, max_range_size=256, seed=SEED
        ),
    )
    tuner = AutoTuner(AutoTunePolicy(min_window=128))
    engine.attach_autotuner(tuner)
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    los, his = _uncorrelated_ranges(keys, 3000, 256, SEED + 4)
    engine.batch_range_empty(los, his)
    bits = [d.chosen.bits_per_key for d in tuner.decisions]
    assert bits and bits[0] > 4, tuner.decisions
    assert tuner.current_spec(0).backend == "grafite"


def test_retarget_on_leveled_shard_rebuilds_slice_by_slice():
    """ISSUE 5 acceptance: an AutoTuner backend switch on a leveled shard
    must converge through bounded per-slice rebuild steps — each step's
    write volume (IoStats.entries_compacted delta) is one slice, never
    the shard — and slices already under the new backend are not
    rebuilt again."""
    from repro.lsm import LeveledPolicy

    keys = _keys(9000)
    engine = ShardedEngine(
        UNIVERSE, num_shards=1, memtable_limit=4096,
        filter_spec=FilterSpec(backend="snarf", bits_per_key=16, seed=SEED),
        compaction=LeveledPolicy(slice_target=512),
    )
    tuner = AutoTuner(AutoTunePolicy(min_window=128))
    engine.attach_autotuner(tuner)
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    store = engine.shards[0]
    store.request_compaction()
    store.compact()  # settle the sliced level before the attack
    slices = store.levels[0]
    assert len(slices) > 4, "need a genuinely sliced shard"
    max_slice = max(len(s) for s in slices)
    # Adversarial traffic: the tuner evicts SNARF for the robust default
    # and tags the existing slices for rebuild.
    los, his = _empty_ranges_near_keys(keys, 2000, 16, SEED + 40)
    assert engine.batch_range_empty(los, his).all()
    assert tuner.backend_counts() == {"grafite": 1}
    tagged = store.stale_filter_uids
    assert tagged, "the switch should tag the live slices as stale"
    # Drain one bounded step at a time, measuring each step's rewrite.
    deltas = []
    while store.needs_compaction:
        before = store.stats.entries_compacted
        if engine.drain_compactions(max_steps=1) == 0:
            break
        deltas.append(store.stats.entries_compacted - before)
    assert len(deltas) >= len(tagged) > 1
    assert max(deltas) <= max_slice, (
        f"a rebuild step rewrote {max(deltas)} entries — more than one "
        f"slice ({max_slice}); the switch must not merge the whole shard"
    )
    assert sum(deltas) <= 2 * len(store), deltas
    for run in store.levels[0]:
        if run.filter is not None:
            assert run.filter.name == "Grafite"
    # Converged: nothing further to rebuild, and a fresh drain is a no-op.
    assert not store.stale_filter_uids
    before_total = store.stats.entries_compacted
    engine.drain_compactions()
    assert store.stats.entries_compacted == before_total


# ----------------------------------------------------------------------
# Churn exactness
# ----------------------------------------------------------------------
def test_exactness_while_tuner_churns_backends():
    """Backend switches across flushes/compactions never change answers."""
    keys = _keys(6000)
    key_set = set(int(k) for k in keys)
    engine, tuner = _tuned_engine("snarf", min_window=96)
    live = np.sort(np.asarray(sorted(key_set), dtype=np.uint64))
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    rng = np.random.default_rng(SEED + 5)
    phases = ["correlated", "uncorrelated", "uncorrelated",
              "uncorrelated", "uncorrelated", "correlated"]
    for i, phase in enumerate(phases):
        # Interleaved writes: new runs are built under the current spec,
        # and tombstones cross backend generations.
        fresh = rng.integers(0, UNIVERSE, 200, dtype=np.uint64)
        for j, key in enumerate(fresh):
            if j % 5 == 4:
                engine.delete(int(key))
                key_set.discard(int(key))
            else:
                engine.put(int(key), b"w")
                key_set.add(int(key))
        live = np.asarray(sorted(key_set), dtype=np.uint64)
        if phase == "correlated":
            los, his = _empty_ranges_near_keys(live, 800, 16, SEED + 10 + i)
        else:
            los, his = _uncorrelated_ranges(live, 800, 16, SEED + 10 + i)
        got = engine.batch_range_empty(los, his)
        want = _oracle_empty(live, los, his)
        assert got.tolist() == want.tolist(), f"divergence in phase {i} ({phase})"
    switches = {(d.previous.backend, d.chosen.backend) for d in tuner.decisions}
    assert ("snarf", "grafite") in switches, tuner.decisions
    assert ("grafite", "snarf") in switches, tuner.decisions


def test_exactness_under_served_autotune(tmp_path):
    """The serving layer drives the same churn through its thread pool
    (background compaction worker included) — `serve --autotune`'s path."""
    keys = _keys(5000)
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=512,
        filter_spec=FilterSpec(backend="snarf", bits_per_key=12, seed=SEED),
        directory=tmp_path / "db",
    )
    engine.attach_autotuner(AutoTuner(AutoTunePolicy(min_window=96)))
    with RangeQueryService(engine, num_threads=4, cache_blocks=256) as service:
        key_set = set()
        for key in keys:
            service.put(int(key), b"v")
            key_set.add(int(key))
        service.flush_all()
        # Let the background worker drain the post-flush compactions: the
        # tuner discards windows observed over a pending rebuild, so the
        # correlated phase must start on a settled run set to count.
        assert service.wait_for_compactions(timeout=10.0)
        rng = np.random.default_rng(SEED + 6)
        for i, phase in enumerate(["correlated", "uncorrelated", "uncorrelated"]):
            live = np.asarray(sorted(key_set), dtype=np.uint64)
            if phase == "correlated":
                los, his = _empty_ranges_near_keys(live, 700, 16, SEED + 20 + i)
            else:
                los, his = _uncorrelated_ranges(live, 700, 16, SEED + 20 + i)
            got = service.batch_range_empty(los, his)
            want = _oracle_empty(live, los, his)
            assert got.tolist() == want.tolist(), f"phase {i} diverged"
        assert service.wait_for_compactions(timeout=10.0)
        tuner = engine.autotuner
        assert any(
            d.previous.backend == "snarf" and d.chosen.backend == "grafite"
            for d in tuner.decisions
        ), tuner.decisions


# ----------------------------------------------------------------------
# Adversarial workloads against the served engine (new scenario class)
# ----------------------------------------------------------------------
def _loaded_engine(backend, keys, autotune=False, min_window=128):
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=2048,
        filter_spec=FilterSpec(backend=backend, bits_per_key=12, seed=SEED),
    )
    if autotune:
        engine.attach_autotuner(AutoTuner(AutoTunePolicy(min_window=min_window)))
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return engine


def test_adversary_amplifies_heuristic_but_not_robust_serving():
    keys = _keys()
    adversary_args = dict(rounds=3, queries_per_round=300, range_size=16)
    heuristic = _loaded_engine("snarf", keys)
    robust = _loaded_engine("grafite", keys)
    report_h = AdaptiveAdversary(keys, leaked_fraction=0.2, seed=SEED).attack_system(
        heuristic, universe=UNIVERSE, **adversary_args
    )
    report_r = AdaptiveAdversary(keys, leaked_fraction=0.2, seed=SEED).attack_system(
        robust, universe=UNIVERSE, **adversary_args
    )
    # The paper's qualitative claim at system level: correlated probes
    # drive the heuristic's wasted-read rate out of proportion while the
    # robust default stays near its design epsilon.
    assert report_h.final_fpr > 0.5, report_h.per_round_fpr
    assert report_r.final_fpr < 0.1, report_r.per_round_fpr


def test_autotuned_serving_recovers_from_adversary():
    keys = _keys()
    engine = _loaded_engine("snarf", keys, autotune=True)
    report = AdaptiveAdversary(keys, leaked_fraction=0.2, seed=SEED).attack_system(
        engine, universe=UNIVERSE, rounds=4, queries_per_round=400, range_size=16
    )
    # Scalar probes feed IoStats but not the batch observer, so kick the
    # tuner with one observed batch of the same adversarial traffic.
    los, his = _empty_ranges_near_keys(keys, 600, 16, SEED + 30)
    assert engine.batch_range_empty(los, his).all()
    tuner = engine.autotuner
    assert tuner.backend_counts() == {"grafite": 2}, (
        report.per_round_fpr, tuner.decisions
    )
    # Under the rebuilt robust runs the same attack stream loses its bite.
    engine.drain_compactions()
    after = AdaptiveAdversary(keys, leaked_fraction=0.2, seed=SEED).attack_system(
        engine, universe=UNIVERSE, rounds=2, queries_per_round=300, range_size=16
    )
    assert after.final_fpr < 0.1, after.per_round_fpr
