"""Chaos tests: seeded fault injection end-to-end (:mod:`repro.faults`).

The discipline throughout is *differential*: every chaos run is
compared against an exact oracle (a plain dict, or the un-proxied
service answering the same queries), and the hardened stack may answer
each request **exactly correctly or with a typed error — never silently
wrong**. Every storm also asserts ``plan.injected`` is non-empty, so a
sweep that quietly injected nothing cannot pass vacuously.

Coverage map:

* :class:`FaultPlan` determinism and the filesystem seam primitives;
* disk chaos — checkpoint storms under torn writes / EIO and a
  crash-reopen loop under torn WAL appends, both against a dict oracle;
* network chaos — :class:`FaultyTransport` between real clients and a
  real server, with :class:`RetryPolicy` absorbing resets/stalls/
  fragmentation (sync reads, async put/get);
* the failure taxonomy — retry classification, bounded backoff,
  per-request deadlines (:class:`DeadlineExceeded` *is a*
  ``TimeoutError``), server idle/oversized-frame guards, and the load
  generator's per-class error ledger.

``REPRO_DIFF_SEED`` reseeds every storm (CI runs a second sweep under a
different seed).
"""

import asyncio
import errno
import os
import socket
import struct
import time
from pathlib import Path

import numpy as np
import pytest

from repro import CorruptionError, DeadlineExceeded, ShardedEngine, faults
from repro.analysis.report import format_error_ledger
from repro.engine import RangeQueryService, persist
from repro.errors import InvalidParameterError
from repro.net import (
    AsyncClient,
    ProtocolErrorClosed,
    RemoteError,
    RetryPolicy,
    ServerConfig,
    ShedError,
    SyncClient,
    classify_error,
    serve_in_thread,
)
from repro.net import protocol as proto

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20240808"))
UNIVERSE = 2**16

#: The typed errors a chaos-stormed request may legitimately surface.
TYPED_ERRORS = (
    DeadlineExceeded, ShedError, ProtocolErrorClosed, ConnectionError,
    EOFError, OSError,
)


# ----------------------------------------------------------------------
# FaultPlan: determinism, scoping, seam primitives
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        def draws(plan):
            return [plan.transport_action() for _ in range(300)]

        a = faults.FaultPlan(seed=5, reset=0.3, stall=0.2, partial=0.15)
        b = faults.FaultPlan(seed=5, reset=0.3, stall=0.2, partial=0.15)
        assert draws(a) == draws(b)
        assert a.injected == b.injected
        assert a.total_injected() > 0

    def test_different_seed_different_schedule(self):
        a = faults.FaultPlan(seed=1, reset=0.5)
        b = faults.FaultPlan(seed=2, reset=0.5)
        assert [a.transport_action() for _ in range(200)] != [
            b.transport_action() for _ in range(200)
        ]

    def test_probabilities_validated(self):
        with pytest.raises(InvalidParameterError):
            faults.FaultPlan(torn_write=1.5)
        with pytest.raises(InvalidParameterError):
            faults.FaultPlan(reset=-0.1)

    def test_match_scopes_filesystem_faults(self, tmp_path):
        plan = faults.FaultPlan(seed=1, io_error=1.0, match=".sst")
        with faults.inject(plan):
            wal = tmp_path / "wal.log"
            faults.write_bytes(wal, b"safe")  # unmatched: passthrough
            assert faults.read_bytes(wal) == b"safe"
            with pytest.raises(OSError) as exc_info:
                faults.write_bytes(tmp_path / "run-0.sst", b"doomed")
        assert exc_info.value.errno == errno.EIO
        assert plan.injected["io_error"] == 1

    def test_inject_always_uninstalls(self):
        assert faults.get_plan() is None
        plan = faults.FaultPlan(seed=1)
        with faults.inject(plan):
            assert faults.get_plan() is plan
        assert faults.get_plan() is None
        with pytest.raises(RuntimeError):
            with faults.inject(plan):
                raise RuntimeError("boom")
        assert faults.get_plan() is None


class TestFilesystemSeam:
    def test_passthrough_without_plan(self, tmp_path):
        path = tmp_path / "blob"
        faults.write_bytes(path, b"hello", fsync=True)
        assert faults.read_bytes(path) == b"hello"
        faults.fsync_dir(tmp_path)  # must not raise

    def test_torn_write_leaves_a_strict_prefix(self, tmp_path):
        path = tmp_path / "blob"
        data = bytes(range(256)) * 8
        with faults.inject(faults.FaultPlan(seed=3, torn_write=1.0)) as plan:
            with pytest.raises(OSError):
                faults.write_bytes(path, data)
        on_disk = path.read_bytes()
        assert data.startswith(on_disk) and len(on_disk) < len(data)
        assert plan.injected["torn_write"] == 1

    def test_bit_flip_is_read_side_only(self, tmp_path):
        path = tmp_path / "blob"
        data = b"\x00" * 512
        faults.write_bytes(path, data)
        with faults.inject(faults.FaultPlan(seed=4, bit_flip=1.0)):
            corrupted = faults.read_bytes(path)
        assert corrupted != data and len(corrupted) == len(data)
        assert path.read_bytes() == data  # the medium itself untouched

    def test_faulty_file_tears_appends(self, tmp_path):
        path = tmp_path / "log"
        fh = faults.wrap_file(open(path, "ab"))
        fh.write(b"intact-record|")
        with faults.inject(faults.FaultPlan(seed=5, torn_write=1.0)):
            with pytest.raises(OSError):
                fh.write(b"torn-record")
        fh.close()
        on_disk = path.read_bytes()
        assert on_disk.startswith(b"intact-record|")
        assert not on_disk.endswith(b"torn-record")


# ----------------------------------------------------------------------
# Disk chaos differentials
# ----------------------------------------------------------------------
class TestDiskChaos:
    def test_checkpoint_storm_preserves_acknowledged_state(self, tmp_path):
        """Checkpoints under torn writes and EIO may fail, but every
        acknowledged put survives the reopen: a failed commit leaves the
        previous manifest + full WAL, a post-commit failure replays the
        WAL idempotently. Either way the oracle state is exact."""
        for trial in range(3):
            db = tmp_path / f"db-{trial}"
            rng = np.random.default_rng(SEED + trial)
            plan = faults.FaultPlan(
                seed=SEED + trial, torn_write=0.15, io_error=0.1,
                latency=0.05, latency_s=1e-4,
            )
            engine = ShardedEngine(
                UNIVERSE, num_shards=2, memtable_limit=32, directory=db
            )
            oracle = {}
            failed = succeeded = 0
            for index in range(1, 121):
                key = int(rng.integers(UNIVERSE))
                value = int(rng.integers(1 << 20))
                engine.put(key, value)
                oracle[key] = value
                if index % 15 == 0:
                    with faults.inject(plan):
                        try:
                            engine.checkpoint()
                            succeeded += 1
                        except OSError:
                            failed += 1
            engine.close(checkpoint=False)  # crash
            assert plan.total_injected() > 0, "storm never fired"
            reopened = ShardedEngine.open(db)
            try:
                got = dict(reopened.range_scan(0, UNIVERSE - 1))
            finally:
                reopened.close(checkpoint=False)
            assert got == oracle, (
                f"trial {trial} (seed {SEED + trial}): "
                f"{failed} failed / {succeeded} ok checkpoints diverged"
            )

    def test_wal_crash_reopen_loop(self, tmp_path):
        """Torn WAL appends surface as OSError to the writer (the write
        was *not* acknowledged); treating each as a crash and reopening
        must recover exactly the acknowledged prefix, every time."""
        db = tmp_path / "db"
        oracle = {}
        rng = np.random.default_rng(SEED)
        plan = faults.FaultPlan(seed=SEED, torn_write=0.04, match="wal")
        crashes = 0
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=64, directory=db
        )
        with faults.inject(plan):
            for _ in range(300):
                key = int(rng.integers(UNIVERSE))
                value = int(rng.integers(1 << 20))
                try:
                    engine.put(key, value)
                except OSError:
                    crashes += 1
                    engine.close(checkpoint=False)
                    engine = ShardedEngine.open(db)
                    assert dict(engine.range_scan(0, UNIVERSE - 1)) == oracle
                    continue
                oracle[key] = value
        engine.close(checkpoint=False)
        assert crashes > 0, "no torn append fired; raise the probability"
        assert plan.injected["torn_write"] == crashes
        engine = ShardedEngine.open(db)
        try:
            assert dict(engine.range_scan(0, UNIVERSE - 1)) == oracle
        finally:
            engine.close(checkpoint=False)

    def test_scrub_reports_at_rest_damage(self, tmp_path):
        db = tmp_path / "db"
        engine = ShardedEngine(
            UNIVERSE, num_shards=1, memtable_limit=16, directory=db
        )
        for key in range(0, 2000, 3):
            engine.put(key, key)
        engine.close()  # clean checkpoint
        assert persist.scrub_snapshot(db)["ok"]
        chaos = faults.FaultyDir(db, faults.FaultPlan(seed=SEED))
        chaos.flip_bit("shard-*/*.sst")
        report = persist.scrub_snapshot(db)
        assert not report["ok"] and report["runs_corrupt"] == 1
        assert chaos.plan.injected["at_rest_bit_flip"] == 1


# ----------------------------------------------------------------------
# Network chaos differentials
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chaos_service():
    engine = ShardedEngine(UNIVERSE, num_shards=2, memtable_limit=512)
    rng = np.random.default_rng(SEED)
    keys = np.unique(rng.integers(0, UNIVERSE, 2000, dtype=np.uint64))
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    svc = RangeQueryService(engine, num_threads=2, cache_blocks=256)
    yield svc
    svc.close()


def _chaos_queries(n, seed):
    rng = np.random.default_rng(seed)
    los = rng.integers(0, UNIVERSE - 64, n, dtype=np.uint64)
    his = los + rng.integers(0, 64, n, dtype=np.uint64)
    return los, his


class TestNetworkChaos:
    def test_sync_differential_through_resets(self, chaos_service):
        """SyncClient + RetryPolicy through a proxy injecting resets,
        stalls and fragmentation: every answered query must match the
        un-proxied service exactly; failures must be typed."""
        los, his = _chaos_queries(250, SEED + 1)
        direct = [
            chaos_service.range_empty(int(lo), int(hi))
            for lo, hi in zip(los, his)
        ]
        # The acceptance bar: >= 10% of forwarded chunks reset.
        plan = faults.FaultPlan(
            seed=SEED, reset=0.10, partial=0.25, stall=0.02, stall_s=0.01
        )
        with serve_in_thread(
            chaos_service, config=ServerConfig(batch_window=100e-6)
        ) as handle:
            with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
                client = SyncClient(
                    proxy.host, proxy.port, timeout=10.0, request_timeout=5.0,
                    retry=RetryPolicy(
                        max_attempts=10, base_delay=0.005, seed=SEED
                    ),
                )
                answered = surfaced = 0
                wrong = []
                try:
                    for i, (lo, hi) in enumerate(zip(los, his)):
                        try:
                            answer = client.range_empty(int(lo), int(hi))
                        except TYPED_ERRORS:
                            surfaced += 1
                            continue
                        answered += 1
                        if answer != direct[i]:
                            wrong.append((int(lo), int(hi), answer))
                finally:
                    client.close()
        assert not wrong, f"silently wrong answers under chaos: {wrong[:5]}"
        assert proxy.counters["resets_injected"] > 0, "storm never fired"
        # Bounded retries absorb nearly all of a 10% reset storm.
        assert answered >= len(los) * 0.9, (
            f"only {answered}/{len(los)} answered ({surfaced} typed errors)"
        )

    def test_async_put_get_differential(self, chaos_service):
        """AsyncClient under the same storm: puts are idempotent and
        retried to success, after which every get must return exactly
        the written value."""
        plan = faults.FaultPlan(seed=SEED + 2, reset=0.05, partial=0.3)

        async def storm(proxy):
            client = await AsyncClient.connect(
                proxy.host, proxy.port, timeout=10.0, request_timeout=5.0,
                retry=RetryPolicy(max_attempts=8, base_delay=0.005, seed=SEED),
            )
            rng = np.random.default_rng(SEED + 3)
            written = {}
            try:
                for i in range(60):
                    key = int(rng.integers(UNIVERSE))
                    value = f"chaos-{i}".encode()
                    for _ in range(50):
                        try:
                            await client.put(key, value)
                            break
                        except TYPED_ERRORS:
                            continue
                    else:
                        pytest.fail(f"put({key}) never succeeded")
                    written[key] = value
                wrong = []
                for key, value in written.items():
                    for _ in range(50):
                        try:
                            got = await client.get(key)
                            break
                        except TYPED_ERRORS:
                            continue
                    else:
                        pytest.fail(f"get({key}) never succeeded")
                    if got != value:
                        wrong.append((key, got, value))
                assert not wrong, f"reads diverged from writes: {wrong[:5]}"
            finally:
                await client.close()

        with serve_in_thread(
            chaos_service, config=ServerConfig(batch_window=100e-6)
        ) as handle:
            with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
                asyncio.run(storm(proxy))
        assert plan.total_injected() > 0, "storm never fired"

    def test_loadgen_error_ledger_under_chaos(self, chaos_service):
        """The open-loop generator through the chaos proxy files every
        failure under a class in ``error_classes`` (satellite: the
        ``[loadgen]`` ledger), and the classes sum to ``errors``."""
        from repro.net import LoadConfig, run_loadgen

        plan = faults.FaultPlan(seed=SEED + 4, reset=0.05, partial=0.2)
        cfg = LoadConfig(
            clients=16, connections=2, rate=400.0, n_requests=300,
            distribution="uniform", seed=SEED, timeout=15.0,
            request_timeout=5.0,
            retry=RetryPolicy(max_attempts=4, base_delay=0.005, seed=SEED),
        )
        with serve_in_thread(chaos_service) as handle:
            with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
                report = run_loadgen(
                    proxy.host, proxy.port, cfg, universe=UNIVERSE
                )
        assert plan.total_injected() > 0
        assert report.completed + report.errors + report.shed >= cfg.n_requests
        assert sum(report.error_classes.values()) == report.errors
        assert set(report.error_classes) <= {
            "reset", "timeout", "remote", "protocol", "other", "cancelled"
        }
        ledger = format_error_ledger(
            report.shed, report.errors, report.error_classes
        )
        assert ledger.startswith(f"shed={report.shed} errors={report.errors}")


# ----------------------------------------------------------------------
# Failure taxonomy: retries, deadlines, guards
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_classification(self):
        retryable = [
            ShedError("shed"),
            DeadlineExceeded("slow"),
            ProtocolErrorClosed(),
            ConnectionResetError(),
            EOFError(),
            OSError(errno.ECONNRESET, "reset"),
        ]
        for exc in retryable:
            assert RetryPolicy.is_retryable(exc), exc
        terminal = [
            RemoteError("server raised"),
            proto.ProtocolError("malformed frame"),
            ValueError("bug"),
        ]
        for exc in terminal:
            assert not RetryPolicy.is_retryable(exc), exc

    def test_backoff_bounded_and_jittered(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.02, max_delay=0.5,
            multiplier=2.0, jitter=0.25, seed=1,
        )
        for k in range(10):
            ideal = min(0.02 * 2.0 ** k, 0.5)
            d = policy.delay(k)
            assert ideal * 0.75 <= d <= ideal * 1.25, (k, d, ideal)

    def test_deterministic_given_seed(self):
        a = RetryPolicy(seed=9)
        b = RetryPolicy(seed=9)
        assert [a.delay(k) for k in range(8)] == [b.delay(k) for k in range(8)]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=1.5)

    def test_classify_error_mirrors_retry_taxonomy(self):
        assert classify_error(DeadlineExceeded("x")) == "timeout"
        assert classify_error(RemoteError("x")) == "remote"
        assert classify_error(ProtocolErrorClosed()) == "reset"
        assert classify_error(proto.ProtocolError("x")) == "protocol"
        assert classify_error(ConnectionResetError()) == "reset"
        assert classify_error(OSError(errno.EPIPE, "pipe")) == "reset"
        assert classify_error(ValueError("x")) == "other"


class TestDeadlines:
    def test_deadline_exceeded_is_a_timeout_error(self):
        exc = DeadlineExceeded("too slow")
        assert isinstance(exc, TimeoutError)
        from repro.errors import ReproError

        assert isinstance(exc, ReproError)

    def test_sync_request_deadline(self, chaos_service):
        """A transport stalled past the per-request deadline surfaces
        DeadlineExceeded (no retry policy: one attempt, one deadline)."""
        plan = faults.FaultPlan(seed=SEED)  # calm while connecting
        with serve_in_thread(chaos_service) as handle:
            with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
                client = SyncClient(
                    proxy.host, proxy.port, timeout=10.0, request_timeout=0.25
                )
                try:
                    client.ping()  # handshake + one clean roundtrip
                    plan.stall = 1.0
                    plan.stall_s = 5.0
                    start = time.monotonic()
                    with pytest.raises(DeadlineExceeded):
                        client.range_empty(0, 10)
                    assert time.monotonic() - start < 5.0
                finally:
                    client.close()

    def test_async_request_deadline(self, chaos_service):
        plan = faults.FaultPlan(seed=SEED)

        async def scenario(proxy):
            client = await AsyncClient.connect(
                proxy.host, proxy.port, timeout=10.0, request_timeout=0.25
            )
            try:
                await client.ping()
                plan.stall = 1.0
                plan.stall_s = 5.0
                with pytest.raises(DeadlineExceeded):
                    await client.range_empty(0, 10)
            finally:
                await client.close()

        with serve_in_thread(chaos_service) as handle:
            with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
                asyncio.run(scenario(proxy))


class TestServerGuards:
    def test_idle_timeout_closes_connection(self, chaos_service):
        with serve_in_thread(
            chaos_service, config=ServerConfig(idle_timeout=0.15)
        ) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                sock.settimeout(5.0)
                assert sock.recv(4096) == b"", "server should close the idler"
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if handle.stats()["idle_closed"] >= 1:
                    break
                time.sleep(0.01)
            assert handle.stats()["idle_closed"] >= 1

    def test_max_frame_guard_drops_hostile_length(self, chaos_service):
        with serve_in_thread(
            chaos_service, config=ServerConfig(max_frame=64)
        ) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                sock.settimeout(5.0)
                # A legal frame whose length prefix exceeds the
                # connection's cap: the server must refuse to buffer it.
                sock.sendall(proto.encode_frame(proto.OP_PING, 1, b"x" * 200))
                chunks = b""
                try:
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        chunks += chunk
                except (ConnectionError, socket.timeout):
                    pass
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if handle.stats()["protocol_errors"] >= 1:
                    break
                time.sleep(0.01)
            assert handle.stats()["protocol_errors"] >= 1

    def test_error_messages_truncated_on_the_wire(self):
        frame_bytes = proto.encode_error(7, proto.OP_PING, "x" * 100_000)
        frames = proto.FrameDecoder().feed(frame_bytes)
        assert len(frames) == 1
        assert len(frames[0].body) <= proto.MAX_ERROR_MESSAGE
        assert frames[0].body.endswith(b"... (truncated)")
