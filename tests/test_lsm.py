"""Tests for the mini LSM store, including a model-based property test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError, InvalidQueryError
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import SSTable, merge_runs
from repro.lsm.store import LSMStore

UNIVERSE = 2**32


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=14, max_range_size=64, seed=7)


class TestMemTable:
    def test_put_get_overwrite(self):
        mt = MemTable()
        mt.put(5, "a")
        mt.put(5, "b")
        assert mt.get(5) == (True, "b")
        assert mt.get(6) == (False, None)
        assert len(mt) == 1

    def test_delete_leaves_tombstone(self):
        mt = MemTable()
        mt.put(1, "x")
        mt.delete(1)
        found, value = mt.get(1)
        assert found and value is TOMBSTONE

    def test_scan_sorted(self):
        mt = MemTable()
        for k in (30, 10, 20):
            mt.put(k, str(k))
        assert [k for k, _ in mt.scan(10, 25)] == [10, 20]
        mt.put(15, "15")  # scan must see post-insert state
        assert [k for k, _ in mt.scan(10, 25)] == [10, 15, 20]

    def test_items_sorted_and_clear(self):
        mt = MemTable()
        mt.put(2, "b")
        mt.put(1, "a")
        assert mt.items_sorted() == [(1, "a"), (2, "b")]
        mt.clear()
        assert len(mt) == 0


class TestSSTable:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SSTable([(2, "b"), (1, "a")], UNIVERSE)

    def test_get_counts_io(self):
        run = SSTable([(1, "a"), (5, "b")], UNIVERSE)
        assert run.get(5) == (True, "b")
        assert run.get(4) == (False, None)
        assert run.io_reads == 2

    def test_scan(self):
        run = SSTable([(1, "a"), (5, "b"), (9, "c")], UNIVERSE)
        assert run.scan(2, 8) == [(5, "b")]
        assert run.key_bounds == (1, 9)

    def test_filter_attached(self):
        run = SSTable([(100, "v")], UNIVERSE, grafite_factory)
        assert run.filter is not None
        assert run.filter_bits > 0
        assert run.may_contain_range(100, 100)
        assert not run.may_contain_range(200_000, 200_063) or True  # maybe-FP allowed

    def test_merge_last_write_wins(self):
        new = SSTable([(1, "new"), (2, "x")], UNIVERSE)
        old = SSTable([(1, "old"), (3, "y")], UNIVERSE)
        merged = merge_runs([new, old], drop_tombstones=False)
        assert merged == [(1, "new"), (2, "x"), (3, "y")]

    def test_merge_drops_tombstones_at_bottom(self):
        new = SSTable([(1, TOMBSTONE)], UNIVERSE)
        old = SSTable([(1, "old"), (2, "keep")], UNIVERSE)
        merged = merge_runs([new, old], drop_tombstones=True)
        assert merged == [(2, "keep")]


class TestLSMStore:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LSMStore(universe=0)
        with pytest.raises(InvalidParameterError):
            LSMStore(memtable_limit=0)
        store = LSMStore(universe=100)
        with pytest.raises(InvalidQueryError):
            store.put(100, "x")
        with pytest.raises(InvalidQueryError):
            store.range_scan(5, 3)

    def test_put_get_through_flush(self):
        store = LSMStore(UNIVERSE, memtable_limit=4, filter_factory=grafite_factory)
        for k in range(10):
            store.put(k * 100, f"v{k}")
        assert store.get(300) == "v3"
        assert store.get(301) is None
        assert store.run_count >= 1

    def test_overwrite_across_flush(self):
        store = LSMStore(UNIVERSE, memtable_limit=2)
        store.put(7, "old")
        store.flush()
        store.put(7, "new")
        assert store.get(7) == "new"
        store.flush()
        assert store.get(7) == "new"

    def test_delete_across_levels(self):
        store = LSMStore(UNIVERSE, memtable_limit=100)
        store.put(42, "x")
        store.flush()
        store.delete(42)
        assert store.get(42) is None
        store.flush()
        assert store.get(42) is None
        store.compact()
        assert store.get(42) is None
        assert store.range_scan(0, 1000) == []

    def test_compaction_merges_runs(self):
        store = LSMStore(UNIVERSE, memtable_limit=2, compaction_fanout=2)
        for k in range(12):
            store.put(k, str(k))
        assert store.stats.compactions >= 1
        assert store.run_count <= 2
        assert store.get(11) == "11"

    def test_range_scan_merges_all_sources(self):
        store = LSMStore(UNIVERSE, memtable_limit=3)
        store.put(10, "a")
        store.put(20, "b")
        store.put(30, "c")  # triggers flush
        store.put(15, "d")  # stays in memtable
        result = store.range_scan(10, 25)
        assert result == [(10, "a"), (15, "d"), (20, "b")]

    def test_filters_save_io_on_empty_probes(self):
        store = LSMStore(UNIVERSE, memtable_limit=500, filter_factory=grafite_factory)
        rng = np.random.default_rng(0)
        keys = np.unique(rng.integers(0, UNIVERSE, 2000, dtype=np.uint64))
        for k in keys:
            store.put(int(k), "v")
        store.flush()
        sorted_keys = np.sort(keys)
        probes = 0
        while probes < 300:
            lo = int(rng.integers(0, UNIVERSE - 64))
            hi = lo + 63
            idx = int(np.searchsorted(sorted_keys, lo))
            if idx < sorted_keys.size and int(sorted_keys[idx]) <= hi:
                continue
            probes += 1
            assert store.range_scan(lo, hi) == []
        stats = store.stats
        assert stats.reads_avoided > stats.reads_performed * 5, (
            "Grafite filters should avoid the vast majority of empty reads"
        )

    def test_no_filter_means_every_overlapping_probe_reads(self):
        store = LSMStore(UNIVERSE, memtable_limit=2)
        store.put(10, "a")
        store.put(20, "b")  # flush
        # Inside the run's key bounds: nothing can prune, the run is read.
        store.range_scan(12, 18)
        assert store.stats.reads_performed >= 1
        assert store.stats.reads_avoided == 0
        # Outside the bounds: the fence-pointer check prunes exactly,
        # filter or not.
        store.range_scan(1000, 1100)
        assert store.stats.reads_avoided >= 1

    def test_filter_bits_accounted(self):
        store = LSMStore(UNIVERSE, memtable_limit=2, filter_factory=grafite_factory)
        store.put(1, "a")
        store.put(2, "b")
        assert store.filter_bits_total > 0

    def test_len_counts_live_keys(self):
        store = LSMStore(UNIVERSE, memtable_limit=3)
        store.put(1, "a")
        store.put(2, "b")
        store.put(3, "c")
        store.delete(2)
        assert len(store) == 2


class TestModelBased:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_reference(self, data):
        """Random op sequences: the store behaves like a dict."""
        store = LSMStore(
            10_000,
            memtable_limit=data.draw(st.integers(min_value=1, max_value=8)),
            compaction_fanout=data.draw(st.integers(min_value=2, max_value=4)),
            filter_factory=grafite_factory if data.draw(st.booleans()) else None,
        )
        model: dict[int, str] = {}
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["put", "delete", "get", "scan", "flush"]),
                    st.integers(min_value=0, max_value=9_999),
                    st.integers(min_value=0, max_value=50),
                ),
                max_size=60,
            )
        )
        for op, key, extra in ops:
            if op == "put":
                store.put(key, f"v{extra}")
                model[key] = f"v{extra}"
            elif op == "delete":
                store.delete(key)
                model.pop(key, None)
            elif op == "get":
                assert store.get(key) == model.get(key)
            elif op == "flush":
                store.flush()
            else:  # scan
                hi = min(9_999, key + extra)
                expected = sorted((k, v) for k, v in model.items() if key <= k <= hi)
                assert store.range_scan(key, hi) == expected
        # Final full check
        expected_all = sorted(model.items())
        assert store.range_scan(0, 9_999) == expected_all
