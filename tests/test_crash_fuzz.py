"""Crash-recovery fuzzing: truncate the WAL everywhere, crash checkpoints.

The WAL's contract is exact: a crash may tear the *last* record, and
recovery must keep every acknowledged write whose record survived —
never a torn write, never losing a checkpointed one. Byte-offset
truncation is the strongest test of that contract: for **every** prefix
length of a recorded run's WAL, reopening the engine must yield exactly
the oracle state after ``checkpoint base + (number of whole records in
the prefix)`` operations. Any "almost valid" tail that recovery
mistakenly replays, or any valid record it mistakenly drops, shows up
as a divergence at some offset.

Checkpoint durability is fuzzed at its commit-point boundaries
separately: a checkpoint commits atomically at the manifest rename, so
a crash before the rename must recover the *previous* checkpoint plus
the full WAL, a crash after the rename but before the WAL reset must
recover the *new* snapshot (idempotently re-applying the WAL), and
stray ``.tmp`` manifests or orphaned run files must never be read.
"""

import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.core.grafite import Grafite
from repro.engine import ShardedEngine, WriteAheadLog, persist
from repro.engine.wal import _HEADER

UNIVERSE = 2**16
SEED = int(os.environ.get("REPRO_DIFF_SEED", "20240731"))


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=12, max_range_size=64, seed=3)


def record_run(
    directory: Path,
    *,
    n_ops: int = 60,
    checkpoint_every: Optional[int] = 25,
    filter_factory=None,
    compaction=None,
    drain_every: Optional[int] = None,
) -> Tuple[List[Dict[int, Any]], int, bytes]:
    """Drive a persistent engine; return per-op oracle states, the op
    index of the last checkpoint, and the final WAL bytes.
    ``drain_every`` runs deferred compaction steps mid-stream so
    non-default policies build real level topologies before the crash."""
    import numpy as np

    rng = np.random.default_rng(SEED)
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=16,
        compaction_fanout=3,
        filter_factory=filter_factory,
        directory=directory,
        compaction=compaction,
    )
    states: List[Dict[int, Any]] = [{}]
    last_checkpoint = 0
    for index in range(1, n_ops + 1):
        state = dict(states[-1])
        if rng.random() < 0.75 or not state:
            key = int(rng.integers(UNIVERSE))
            value = int(rng.integers(1 << 20))
            engine.put(key, value)
            state[key] = value
        else:
            key = int(
                list(state)[rng.integers(len(state))]
                if rng.random() < 0.7
                else rng.integers(UNIVERSE)
            )
            engine.delete(key)
            state.pop(key, None)
        states.append(state)
        if drain_every and index % drain_every == 0:
            engine.drain_compactions()
        if checkpoint_every and index % checkpoint_every == 0:
            engine.checkpoint()
            last_checkpoint = index
    engine.close(checkpoint=False)  # crash: leave the WAL as-is
    return states, last_checkpoint, (directory / "wal.log").read_bytes()


def recovered_state(directory: Path, filter_factory=None) -> Dict[int, Any]:
    engine = ShardedEngine.open(directory, filter_factory=filter_factory)
    try:
        return {k: v for k, v in engine.range_scan(0, UNIVERSE - 1)}
    finally:
        engine.close(checkpoint=False)


def count_whole_records(wal_path: Path) -> int:
    """Parse a (possibly torn) WAL with the production reader."""
    wal = WriteAheadLog(wal_path)
    try:
        return len(wal.recovered)
    finally:
        wal.close()


def truncation_offsets(wal_bytes: bytes, stride: int):
    offsets = list(range(len(_HEADER), len(wal_bytes) + 1, stride))
    if offsets[-1] != len(wal_bytes):
        offsets.append(len(wal_bytes))
    return offsets


def run_truncation_sweep(
    tmp_path: Path, *, filter_factory, stride: int, checkpoint_every=25,
    compaction=None, drain_every=None,
):
    db = tmp_path / "db"
    states, last_checkpoint, wal_bytes = record_run(
        db, filter_factory=filter_factory, checkpoint_every=checkpoint_every,
        compaction=compaction, drain_every=drain_every,
    )
    scratch = tmp_path / "scratch"
    shutil.copytree(db, scratch)
    wal_path = scratch / "wal.log"

    # The op count at the WAL's base: records in the file sit on top of
    # the last checkpoint's snapshot.
    parse = tmp_path / "parse"
    parse.mkdir()
    for offset in truncation_offsets(wal_bytes, stride):
        prefix = wal_bytes[:offset]
        parse_wal = parse / "wal.log"
        parse_wal.write_bytes(prefix)
        surviving = count_whole_records(parse_wal)
        expected_index = last_checkpoint + surviving
        # Prefix property: truncation can only lose unacknowledged tail
        # records, never checkpointed state.
        assert expected_index >= last_checkpoint
        assert expected_index <= len(states) - 1

        wal_path.write_bytes(prefix)
        got = recovered_state(scratch, filter_factory)
        want = states[expected_index]
        assert got == want, (
            f"offset {offset}: recovered {len(got)} keys, expected oracle "
            f"state after op {expected_index} "
            f"({len(want)} keys, checkpoint at {last_checkpoint})"
        )


def test_wal_truncation_every_byte(tmp_path):
    """The full sweep: every byte offset of a 60-record WAL (no mid-run
    checkpoints, so deep truncations cut far into acknowledged history)."""
    run_truncation_sweep(
        tmp_path, filter_factory=None, stride=1, checkpoint_every=None
    )


def test_wal_truncation_every_byte_with_checkpoints(tmp_path):
    """Every byte offset of the post-checkpoint WAL tail: truncation may
    lose tail records but never state from before the checkpoint."""
    run_truncation_sweep(tmp_path, filter_factory=None, stride=1)


def test_wal_truncation_with_filters(tmp_path):
    """Strided sweep with Grafite filters on every run (slower restore
    path: snapshots carry filter blobs that must deserialise bit-exact)."""
    run_truncation_sweep(tmp_path, filter_factory=grafite_factory, stride=7)


# ----------------------------------------------------------------------
# Checkpoint commit-point boundaries
# ----------------------------------------------------------------------
def checkpointed_engine(tmp_path):
    db = tmp_path / "db"
    states, last_checkpoint, _ = record_run(
        db, n_ops=40, checkpoint_every=20
    )
    return db, states, last_checkpoint


def test_crash_between_snapshot_and_wal_reset(tmp_path):
    """Snapshot written, manifest renamed, WAL *not* reset: replaying the
    stale WAL over the newer snapshot must be idempotent."""
    db, states, _ = checkpointed_engine(tmp_path)
    engine = ShardedEngine.open(db)
    engine.flush_all()
    # A checkpoint that dies right after the manifest rename.
    persist.save_snapshot(db, engine._params(), engine.shards)
    engine._wal.close()  # crash instead of engine.checkpoint()'s reset
    assert recovered_state(db) == states[-1]


def test_crash_before_manifest_rename_keeps_old_checkpoint(tmp_path):
    """New run files on disk but the manifest rename never happened: the
    previous checkpoint plus the full WAL still reconstructs everything.

    Replays exactly what :func:`persist.save_snapshot` does *before* its
    commit point — new-generation run files and the ``.tmp`` manifest —
    then crashes. The old manifest must still be honoured, and the old
    generation's files are untouched (GC only runs after the rename).
    """
    import json

    db, states, _ = checkpointed_engine(tmp_path)
    manifest = persist.load_manifest(db)
    engine = ShardedEngine.open(db)
    engine.flush_all()
    generation = manifest["generation"] + 1
    for sid, store in enumerate(engine.shards):
        shard_dir = db / f"shard-{sid:04d}"
        for j, run in enumerate(store.level0_runs):
            (shard_dir / f"run-{generation:06d}-{j:04d}.sst").write_bytes(
                persist.run_to_bytes(run)
            )
        if store.bottom_run is not None:
            (shard_dir / f"bottom-{generation:06d}.sst").write_bytes(
                persist.run_to_bytes(store.bottom_run)
            )
    (db / (persist.MANIFEST_NAME + ".tmp")).write_text(
        json.dumps({**manifest, "generation": generation})
    )
    engine._wal.close()  # crash before the rename commits
    assert recovered_state(db) == states[-1]


def test_torn_manifest_tmp_is_ignored(tmp_path):
    """A torn ``MANIFEST.json.tmp`` (crash mid-write) must never be read."""
    db, states, _ = checkpointed_engine(tmp_path)
    (db / (persist.MANIFEST_NAME + ".tmp")).write_text("{ not json")
    assert recovered_state(db) == states[-1]


def test_orphan_run_files_are_ignored(tmp_path):
    """Stray ``.sst`` files from a dead checkpoint don't poison recovery."""
    db, states, _ = checkpointed_engine(tmp_path)
    (db / "shard-0000" / "run-999999-0000.sst").write_bytes(b"\x00garbage")
    assert recovered_state(db) == states[-1]


def test_wal_truncation_leveled_topology(tmp_path):
    """Strided sweep with leveled compaction live mid-stream: checkpoints
    snapshot a real sliced topology (manifest v2), deferred steps churn
    it between checkpoints, and every truncation offset must still
    recover exactly the oracle state on the restored slices."""
    from repro.lsm import LeveledPolicy

    run_truncation_sweep(
        tmp_path,
        filter_factory=grafite_factory,
        stride=11,
        checkpoint_every=20,
        compaction=LeveledPolicy(slice_target=8),
        drain_every=7,
    )


def test_wal_truncation_tiered_topology(tmp_path):
    """Same sweep under tiered compaction: cascaded levels in the
    checkpoint, recovery replays the tail onto them."""
    run_truncation_sweep(
        tmp_path,
        filter_factory=None,
        stride=13,
        checkpoint_every=20,
        compaction="tiered",
        drain_every=5,
    )


# ----------------------------------------------------------------------
# Pre-slicing (version 1) checkpoints
# ----------------------------------------------------------------------
def _v2_run_to_v1(buf: bytes) -> bytes:
    """Rewrite a current run file in the pre-slicing version-1 layout.

    The run is first re-serialised through the retired row-oriented v3
    writer (production files are columnar v4 now), then byte-surgered:
    everything except the version stamp, the slice-bounds section, and
    the v3 crc trailer is kept bit-identical — exactly what a run file
    written before the slicing and checksum PRs looks like."""
    import struct

    from repro.core.serialization import unpack_int, unpack_words

    assert buf[:4] == b"RSST"
    (version,) = struct.unpack_from("<H", buf, 4)
    if version == 4:
        run = persist.run_from_bytes(buf, missing_filter="drop")
        buf = persist._run_to_bytes_v3(run)
        (version,) = struct.unpack_from("<H", buf, 4)
    assert version == 3
    buf = buf[:-4]  # v1 has no crc32 trailer
    offset = 6 + 8  # header + entry count
    _, offset = unpack_int(buf, offset)     # universe
    _, offset = unpack_words(buf, offset)   # keys
    (mask_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8 + mask_len
    (values_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8 + values_len
    bounds_start = offset
    (has_bounds,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    if has_bounds:
        _, offset = unpack_int(buf, offset)
        _, offset = unpack_int(buf, offset)
    return buf[:4] + struct.pack("<H", 1) + buf[6:bounds_start] + buf[offset:]


def _downgrade_snapshot_to_v1(db: Path) -> None:
    """Rewrite an on-disk checkpoint as the seed (pre-PR) format wrote it:
    manifest version 1 with per-shard ``level0`` + single ``bottom``, no
    ``compaction`` record, and version-1 run files."""
    import json

    manifest = json.loads((db / persist.MANIFEST_NAME).read_text())
    assert manifest["manifest_version"] == 3
    manifest["manifest_version"] = 1
    manifest.pop("compaction", None)
    manifest.pop("crc32", None)  # the seed format carried no checksum
    (db / persist.PREV_MANIFEST_NAME).unlink(missing_ok=True)
    for sid, entry in enumerate(manifest["shards"]):
        levels = entry.pop("levels")
        assert len(levels) <= 1 and all(len(names) <= 1 for names in levels), (
            "the v1 format can only express a single bottom run"
        )
        entry["bottom"] = levels[0][0] if levels and levels[0] else None
        shard_dir = db / f"shard-{sid:04d}"
        for sst in shard_dir.glob("*.sst"):
            sst.write_bytes(_v2_run_to_v1(sst.read_bytes()))
    (db / persist.MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))


def test_v1_single_bottom_checkpoint_reopens_byte_for_byte(tmp_path):
    """A pre-PR checkpoint (v1 manifest, v1 run files, single bottom run)
    must reopen under the default FullMergePolicy with the exact state
    and the exact filter bytes it was written with."""
    from repro.core.serialization import filter_to_bytes

    db = tmp_path / "db"
    states, _, _ = record_run(
        db, n_ops=50, checkpoint_every=25, filter_factory=grafite_factory
    )
    # Settle every shard to the single-bottom topology v1 can express,
    # then checkpoint cleanly.
    engine = ShardedEngine.open(db, filter_factory=grafite_factory)
    for store in engine.shards:
        store.request_compaction()
    engine.drain_compactions()
    engine.close()  # checkpoints
    reference = recovered_state(db, grafite_factory)
    assert reference == states[-1]
    def filter_blobs(engine):
        return [
            [filter_to_bytes(run.filter) for run in store.level0_runs]
            + ([filter_to_bytes(store.bottom_run.filter)]
               if store.bottom_run else [])
            for store in engine.shards
        ]

    engine = ShardedEngine.open(db, filter_factory=grafite_factory)
    before = filter_blobs(engine)
    engine.close(checkpoint=False)

    _downgrade_snapshot_to_v1(db)

    engine = ShardedEngine.open(db, filter_factory=grafite_factory)
    try:
        assert engine.compaction_policy.name == "full"
        assert filter_blobs(engine) == before, (
            "filters did not restore byte-for-byte from v1"
        )
        assert {k: v for k, v in engine.range_scan(0, UNIVERSE - 1)} == reference
        # The reopened engine keeps working: write, compact, re-checkpoint
        # — and the next checkpoint is written in the current format.
        engine.put(123, "post-upgrade")
        engine.checkpoint()
    finally:
        engine.close(checkpoint=False)
    manifest = persist.load_manifest(db)
    assert manifest["generation"] >= 2
    upgraded = recovered_state(db, grafite_factory)
    assert upgraded == {**reference, 123: "post-upgrade"}


def test_truncation_inside_header(tmp_path):
    """A crash before the WAL header finished must not brick recovery —
    the log restarts and only unacknowledged post-checkpoint writes are
    lost (exactly the oracle state at the last checkpoint)."""
    db, states, last_checkpoint = checkpointed_engine(tmp_path)
    wal = db / "wal.log"
    wal.write_bytes(wal.read_bytes()[:3])  # even the magic is torn
    assert recovered_state(db) == states[last_checkpoint]


# ----------------------------------------------------------------------
# At-rest run-blob corruption: bit-flip and truncation sweeps
# ----------------------------------------------------------------------
# The contract under at-rest damage is "CorruptionError or rollback,
# never a silent wrong answer": a checksum-detected corrupt run in the
# newest epoch makes ``open`` fall back to the retained previous epoch
# (replaying the current WAL on top), and only when *both* epochs are
# damaged may it raise — it must never return a state that disagrees
# with every oracle.


def _op_between(before: Dict[int, Any], after: Dict[int, Any]):
    """Recover the single put/delete that turned ``before`` into
    ``after`` (or ``None`` for a no-op delete of an absent key)."""
    for k, v in after.items():
        if k not in before or before[k] != v:
            return (k, v)
    for k in before:
        if k not in after:
            return (k, None)
    return None


def _rollback_oracle(
    states: List[Dict[int, Any]], prev_checkpoint: int, last_checkpoint: int
) -> Dict[int, Any]:
    """State after promoting the previous epoch and replaying the
    current WAL (ops ``last_checkpoint+1 ..``) on top of it — the
    documented loss window is ops ``prev_checkpoint+1 .. last_checkpoint``."""
    state = dict(states[prev_checkpoint])
    for index in range(last_checkpoint + 1, len(states)):
        op = _op_between(states[index - 1], states[index])
        if op is None:
            continue
        key, value = op
        if value is None:
            state.pop(key, None)
        else:
            state[key] = value
    return state


def _current_epoch_blobs(db: Path) -> List[Path]:
    manifest = persist.load_manifest(db)
    blobs: List[Path] = []
    for sid, names in sorted(persist.referenced_runs(manifest).items()):
        blobs.extend(db / f"shard-{sid:04d}" / name for name in sorted(names))
    return blobs


def _corruption_sweep(tmp_path, damage):
    """Record a two-checkpoint run, then apply ``damage(FaultyDir, blob)``
    to every current-epoch run blob in turn; each reopen must either
    roll back to the previous epoch's oracle or raise CorruptionError."""
    from repro import CorruptionError, faults

    db = tmp_path / "db"
    states, last_checkpoint, _ = record_run(db, n_ops=60, checkpoint_every=25)
    prev_checkpoint = last_checkpoint - 25
    want_rollback = _rollback_oracle(states, prev_checkpoint, last_checkpoint)
    blobs = _current_epoch_blobs(db)
    assert blobs, "sweep needs at least one current-epoch run blob"

    rollbacks = 0
    for index, blob in enumerate(blobs):
        scratch = tmp_path / f"scratch-{index}"
        shutil.copytree(db, scratch)
        chaos = faults.FaultyDir(scratch, faults.FaultPlan(seed=SEED + index))
        damage(chaos, scratch / blob.relative_to(db))
        scrub = persist.scrub_snapshot(scratch)
        assert not scrub["ok"], f"scrub missed the damage to {blob.name}"
        try:
            with pytest.warns(UserWarning, match="rolled back"):
                engine = ShardedEngine.open(scratch)
        except CorruptionError:
            continue  # acceptable only when rollback itself is impossible
        try:
            assert engine.rolled_back
            got = {k: v for k, v in engine.range_scan(0, UNIVERSE - 1)}
        finally:
            engine.close(checkpoint=False)
        assert got == want_rollback, (
            f"{blob.name}: rollback state diverged from the previous-epoch "
            f"oracle ({len(got)} keys vs {len(want_rollback)})"
        )
        rollbacks += 1
    # The previous epoch is intact in every trial, so rollback must have
    # actually succeeded (CorruptionError is the both-epochs-dead path).
    assert rollbacks == len(blobs)


def test_run_blob_bit_flip_sweep(tmp_path):
    """One flipped bit in any newest-epoch run blob: checksums catch it
    and ``open`` rolls back to the previous epoch + current WAL."""
    _corruption_sweep(tmp_path, lambda chaos, blob: chaos.flip_bit(path=blob))


def test_run_blob_truncation_sweep(tmp_path):
    """A truncated newest-epoch run blob (torn at a seeded offset) must
    likewise roll back — structural parsing never trusts a short blob."""
    _corruption_sweep(tmp_path, lambda chaos, blob: chaos.truncate(path=blob))


def test_both_epochs_corrupt_raises_corruption_error(tmp_path):
    """When the previous epoch is damaged too there is nothing safe to
    serve: ``open`` must raise CorruptionError, not invent an answer."""
    import json

    from repro import CorruptionError, faults

    db = tmp_path / "db"
    record_run(db, n_ops=60, checkpoint_every=25)
    chaos = faults.FaultyDir(db, faults.FaultPlan(seed=SEED))
    for blob in _current_epoch_blobs(db):
        chaos.flip_bit(path=blob)
    prev = json.loads((db / persist.PREV_MANIFEST_NAME).read_text())
    for sid, names in sorted(persist.referenced_runs(prev).items()):
        for name in sorted(names):
            chaos.flip_bit(path=db / f"shard-{sid:04d}" / name)
    with pytest.raises(CorruptionError):
        ShardedEngine.open(db)


# ----------------------------------------------------------------------
# TTL expiry across crashes (ISSUE 9): expired state must never come back
# ----------------------------------------------------------------------
def _ttl_engine(db: Path):
    """A persistent engine holding live keys plus a doomed TTL'd range.

    Returns the engine with the doomed range already expired *and*
    compacted away (clock at 20, every doomed key's deadline at 10):
    runs have been rewritten with the expired entries dropped or turned
    to tombstones, fully-expired bottom runs aged out."""
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=16, directory=db
    )
    for key in range(0, 500, 7):
        engine.put(key, key)  # immortal
    for key in DOOMED:
        engine.put(key, b"doomed", expires_at=10)
    engine.flush_all()
    engine.checkpoint()
    engine.advance_clock(20)
    for store in engine.shards:
        store.request_compaction()
    engine.drain_compactions()
    assert engine.range_empty(DOOMED[0], DOOMED[-1])
    return engine


DOOMED = list(range(40_000, 40_600, 3))


def _assert_doomed_stays_dead(db: Path) -> None:
    engine = ShardedEngine.open(db)
    try:
        assert engine.ttl_now == 20, "recovery lost the TTL clock"
        assert engine.range_empty(DOOMED[0], DOOMED[-1]), (
            "recovery resurrected an expired range"
        )
        assert all(engine.get(key) is None for key in DOOMED[::17])
        recovered = {k for k, _ in engine.range_scan(0, UNIVERSE - 1)}
        assert not recovered.intersection(DOOMED)
        assert set(range(0, 500, 7)) <= recovered, "live keys were lost"
    finally:
        engine.close(checkpoint=False)


def test_ttl_crash_mid_checkpoint_never_resurrects_expired_range(tmp_path):
    """Kill mid-checkpoint during a TTL-expiring compaction: the snapshot
    commits (manifest renamed) but the WAL — still carrying the doomed
    puts and the clock advance — is never reset. Replaying that stale
    WAL over the newer snapshot must not resurrect the expired-and-aged-
    out range: the OP_CLOCK record restores the logical time before any
    query runs."""
    db = tmp_path / "db"
    engine = _ttl_engine(db)
    persist.save_snapshot(db, engine._params(), engine.shards)
    engine._wal.close()  # crash instead of the WAL reset
    _assert_doomed_stays_dead(db)


def test_ttl_crash_before_checkpoint_replays_clock_from_wal(tmp_path):
    """Crash with *only* the pre-expiry checkpoint on disk: recovery
    replays the WAL tail — doomed puts with their deadlines, then the
    clock advance — on top of the old snapshot. The range must still
    come back dead: expiry is decided by the restored clock, not by
    whether compaction got to rewrite the runs before the crash."""
    db = tmp_path / "db"
    engine = _ttl_engine(db)
    engine._wal.close()  # crash; newest durable manifest predates expiry
    _assert_doomed_stays_dead(db)


def test_ttl_wal_truncation_before_clock_record_is_not_resurrection(tmp_path):
    """Tear the WAL just before the OP_CLOCK record: the doomed puts are
    acknowledged-and-durable but the clock advance is not, so recovery
    legitimately serves them as unexpired (clock still 0). That is the
    torn-tail contract, not resurrection — and re-advancing the clock
    after recovery must kill the range again."""
    db = tmp_path / "db"
    engine = _ttl_engine(db)
    engine._wal.close()
    wal_path = db / "wal.log"
    wal_bytes = wal_path.read_bytes()

    # Find the byte offset where replaying stops yielding the clock: the
    # largest prefix whose production parse has no OP_CLOCK record.
    from repro.engine.wal import OP_CLOCK

    parse = tmp_path / "parse"
    parse.mkdir()
    cut = None
    for offset in range(len(wal_bytes), len(_HEADER) - 1, -1):
        (parse / "wal.log").write_bytes(wal_bytes[:offset])
        wal = WriteAheadLog(parse / "wal.log")
        records = list(wal.recovered)
        wal.close()
        if all(op != OP_CLOCK for op, _, _ in records):
            cut = offset
            break
    assert cut is not None and cut > len(_HEADER)
    wal_path.write_bytes(wal_bytes[:cut])

    engine = ShardedEngine.open(db)
    try:
        assert engine.ttl_now == 0
        assert not engine.range_empty(DOOMED[0], DOOMED[-1])
        engine.advance_clock(20)
        assert engine.range_empty(DOOMED[0], DOOMED[-1])
    finally:
        engine.close(checkpoint=False)


def test_previous_epoch_damage_alone_is_harmless(tmp_path):
    """Corrupting only previous-epoch blobs must not disturb a clean
    open of the newest epoch (no rollback, exact final oracle state)."""
    from repro import faults

    db = tmp_path / "db"
    states, _, _ = record_run(db, n_ops=60, checkpoint_every=25)
    import json

    prev = json.loads((db / persist.PREV_MANIFEST_NAME).read_text())
    current = {
        (sid, name)
        for sid, names in persist.referenced_runs(
            persist.load_manifest(db)
        ).items()
        for name in names
    }
    chaos = faults.FaultyDir(db, faults.FaultPlan(seed=SEED))
    flipped = 0
    for sid, names in sorted(persist.referenced_runs(prev).items()):
        for name in sorted(names):
            if (sid, name) not in current:
                chaos.flip_bit(path=db / f"shard-{sid:04d}" / name)
                flipped += 1
    assert flipped, "expected the previous epoch to own at least one blob"
    engine = ShardedEngine.open(db)
    try:
        assert not engine.rolled_back
        assert {k: v for k, v in engine.range_scan(0, UNIVERSE - 1)} == states[-1]
    finally:
        engine.close(checkpoint=False)
