"""Crash-recovery fuzzing: truncate the WAL everywhere, crash checkpoints.

The WAL's contract is exact: a crash may tear the *last* record, and
recovery must keep every acknowledged write whose record survived —
never a torn write, never losing a checkpointed one. Byte-offset
truncation is the strongest test of that contract: for **every** prefix
length of a recorded run's WAL, reopening the engine must yield exactly
the oracle state after ``checkpoint base + (number of whole records in
the prefix)`` operations. Any "almost valid" tail that recovery
mistakenly replays, or any valid record it mistakenly drops, shows up
as a divergence at some offset.

Checkpoint durability is fuzzed at its commit-point boundaries
separately: a checkpoint commits atomically at the manifest rename, so
a crash before the rename must recover the *previous* checkpoint plus
the full WAL, a crash after the rename but before the WAL reset must
recover the *new* snapshot (idempotently re-applying the WAL), and
stray ``.tmp`` manifests or orphaned run files must never be read.
"""

import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.core.grafite import Grafite
from repro.engine import ShardedEngine, WriteAheadLog, persist
from repro.engine.wal import _HEADER

UNIVERSE = 2**16
SEED = int(os.environ.get("REPRO_DIFF_SEED", "20240731"))


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=12, max_range_size=64, seed=3)


def record_run(
    directory: Path,
    *,
    n_ops: int = 60,
    checkpoint_every: Optional[int] = 25,
    filter_factory=None,
) -> Tuple[List[Dict[int, Any]], int, bytes]:
    """Drive a persistent engine; return per-op oracle states, the op
    index of the last checkpoint, and the final WAL bytes."""
    import numpy as np

    rng = np.random.default_rng(SEED)
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=16,
        compaction_fanout=3,
        filter_factory=filter_factory,
        directory=directory,
    )
    states: List[Dict[int, Any]] = [{}]
    last_checkpoint = 0
    for index in range(1, n_ops + 1):
        state = dict(states[-1])
        if rng.random() < 0.75 or not state:
            key = int(rng.integers(UNIVERSE))
            value = int(rng.integers(1 << 20))
            engine.put(key, value)
            state[key] = value
        else:
            key = int(
                list(state)[rng.integers(len(state))]
                if rng.random() < 0.7
                else rng.integers(UNIVERSE)
            )
            engine.delete(key)
            state.pop(key, None)
        states.append(state)
        if checkpoint_every and index % checkpoint_every == 0:
            engine.checkpoint()
            last_checkpoint = index
    engine.close(checkpoint=False)  # crash: leave the WAL as-is
    return states, last_checkpoint, (directory / "wal.log").read_bytes()


def recovered_state(directory: Path, filter_factory=None) -> Dict[int, Any]:
    engine = ShardedEngine.open(directory, filter_factory=filter_factory)
    try:
        return {k: v for k, v in engine.range_scan(0, UNIVERSE - 1)}
    finally:
        engine.close(checkpoint=False)


def count_whole_records(wal_path: Path) -> int:
    """Parse a (possibly torn) WAL with the production reader."""
    wal = WriteAheadLog(wal_path)
    try:
        return len(wal.recovered)
    finally:
        wal.close()


def truncation_offsets(wal_bytes: bytes, stride: int):
    offsets = list(range(len(_HEADER), len(wal_bytes) + 1, stride))
    if offsets[-1] != len(wal_bytes):
        offsets.append(len(wal_bytes))
    return offsets


def run_truncation_sweep(
    tmp_path: Path, *, filter_factory, stride: int, checkpoint_every=25
):
    db = tmp_path / "db"
    states, last_checkpoint, wal_bytes = record_run(
        db, filter_factory=filter_factory, checkpoint_every=checkpoint_every
    )
    scratch = tmp_path / "scratch"
    shutil.copytree(db, scratch)
    wal_path = scratch / "wal.log"

    # The op count at the WAL's base: records in the file sit on top of
    # the last checkpoint's snapshot.
    parse = tmp_path / "parse"
    parse.mkdir()
    for offset in truncation_offsets(wal_bytes, stride):
        prefix = wal_bytes[:offset]
        parse_wal = parse / "wal.log"
        parse_wal.write_bytes(prefix)
        surviving = count_whole_records(parse_wal)
        expected_index = last_checkpoint + surviving
        # Prefix property: truncation can only lose unacknowledged tail
        # records, never checkpointed state.
        assert expected_index >= last_checkpoint
        assert expected_index <= len(states) - 1

        wal_path.write_bytes(prefix)
        got = recovered_state(scratch, filter_factory)
        want = states[expected_index]
        assert got == want, (
            f"offset {offset}: recovered {len(got)} keys, expected oracle "
            f"state after op {expected_index} "
            f"({len(want)} keys, checkpoint at {last_checkpoint})"
        )


def test_wal_truncation_every_byte(tmp_path):
    """The full sweep: every byte offset of a 60-record WAL (no mid-run
    checkpoints, so deep truncations cut far into acknowledged history)."""
    run_truncation_sweep(
        tmp_path, filter_factory=None, stride=1, checkpoint_every=None
    )


def test_wal_truncation_every_byte_with_checkpoints(tmp_path):
    """Every byte offset of the post-checkpoint WAL tail: truncation may
    lose tail records but never state from before the checkpoint."""
    run_truncation_sweep(tmp_path, filter_factory=None, stride=1)


def test_wal_truncation_with_filters(tmp_path):
    """Strided sweep with Grafite filters on every run (slower restore
    path: snapshots carry filter blobs that must deserialise bit-exact)."""
    run_truncation_sweep(tmp_path, filter_factory=grafite_factory, stride=7)


# ----------------------------------------------------------------------
# Checkpoint commit-point boundaries
# ----------------------------------------------------------------------
def checkpointed_engine(tmp_path):
    db = tmp_path / "db"
    states, last_checkpoint, _ = record_run(
        db, n_ops=40, checkpoint_every=20
    )
    return db, states, last_checkpoint


def test_crash_between_snapshot_and_wal_reset(tmp_path):
    """Snapshot written, manifest renamed, WAL *not* reset: replaying the
    stale WAL over the newer snapshot must be idempotent."""
    db, states, _ = checkpointed_engine(tmp_path)
    engine = ShardedEngine.open(db)
    engine.flush_all()
    # A checkpoint that dies right after the manifest rename.
    persist.save_snapshot(db, engine._params(), engine.shards)
    engine._wal.close()  # crash instead of engine.checkpoint()'s reset
    assert recovered_state(db) == states[-1]


def test_crash_before_manifest_rename_keeps_old_checkpoint(tmp_path):
    """New run files on disk but the manifest rename never happened: the
    previous checkpoint plus the full WAL still reconstructs everything.

    Replays exactly what :func:`persist.save_snapshot` does *before* its
    commit point — new-generation run files and the ``.tmp`` manifest —
    then crashes. The old manifest must still be honoured, and the old
    generation's files are untouched (GC only runs after the rename).
    """
    import json

    db, states, _ = checkpointed_engine(tmp_path)
    manifest = persist.load_manifest(db)
    engine = ShardedEngine.open(db)
    engine.flush_all()
    generation = manifest["generation"] + 1
    for sid, store in enumerate(engine.shards):
        shard_dir = db / f"shard-{sid:04d}"
        for j, run in enumerate(store.level0_runs):
            (shard_dir / f"run-{generation:06d}-{j:04d}.sst").write_bytes(
                persist.run_to_bytes(run)
            )
        if store.bottom_run is not None:
            (shard_dir / f"bottom-{generation:06d}.sst").write_bytes(
                persist.run_to_bytes(store.bottom_run)
            )
    (db / (persist.MANIFEST_NAME + ".tmp")).write_text(
        json.dumps({**manifest, "generation": generation})
    )
    engine._wal.close()  # crash before the rename commits
    assert recovered_state(db) == states[-1]


def test_torn_manifest_tmp_is_ignored(tmp_path):
    """A torn ``MANIFEST.json.tmp`` (crash mid-write) must never be read."""
    db, states, _ = checkpointed_engine(tmp_path)
    (db / (persist.MANIFEST_NAME + ".tmp")).write_text("{ not json")
    assert recovered_state(db) == states[-1]


def test_orphan_run_files_are_ignored(tmp_path):
    """Stray ``.sst`` files from a dead checkpoint don't poison recovery."""
    db, states, _ = checkpointed_engine(tmp_path)
    (db / "shard-0000" / "run-999999-0000.sst").write_bytes(b"\x00garbage")
    assert recovered_state(db) == states[-1]


def test_truncation_inside_header(tmp_path):
    """A crash before the WAL header finished must not brick recovery —
    the log restarts and only unacknowledged post-checkpoint writes are
    lost (exactly the oracle state at the last checkpoint)."""
    db, states, last_checkpoint = checkpointed_engine(tmp_path)
    wal = db / "wal.log"
    wal.write_bytes(wal.read_bytes()[:3])  # even the magic is torn
    assert recovered_state(db) == states[last_checkpoint]
