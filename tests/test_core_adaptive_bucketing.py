"""Tests for WorkloadAwareBucketing (the paper's §7 future-work feature)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fpr import measure_fpr
from repro.core.adaptive_bucketing import WorkloadAwareBucketing
from repro.core.bucketing import Bucketing
from repro.errors import InvalidParameterError, InvalidQueryError
from repro.workloads.datasets import uniform
from repro.workloads.queries import uncorrelated_queries

UNIVERSE = 2**32
KEYS = uniform(4000, universe=UNIVERSE, seed=0)


def hot_region_queries(n, seed, range_size=16):
    """Empty queries concentrated in the first 1/16th of the universe."""
    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(KEYS)
    out = []
    while len(out) < n:
        lo = int(rng.integers(0, UNIVERSE // 16 - range_size))
        hi = lo + range_size - 1
        idx = int(np.searchsorted(sorted_keys, lo))
        if idx < sorted_keys.size and int(sorted_keys[idx]) <= hi:
            continue
        out.append((lo, hi))
    return out


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            WorkloadAwareBucketing(KEYS, UNIVERSE, bits_per_key=0, sample_queries=[])
        with pytest.raises(InvalidParameterError):
            WorkloadAwareBucketing(
                KEYS, UNIVERSE, bits_per_key=8, sample_queries=[], num_regions=0
            )
        with pytest.raises(InvalidParameterError):
            WorkloadAwareBucketing(
                KEYS, UNIVERSE, bits_per_key=8, sample_queries=[], cold_floor=0
            )

    def test_empty_keys(self):
        f = WorkloadAwareBucketing([], UNIVERSE, bits_per_key=8, sample_queries=[])
        assert f.key_count == 0
        assert not f.may_contain_range(0, 100)

    def test_budget_respected(self):
        sample = hot_region_queries(64, seed=1)
        f = WorkloadAwareBucketing(KEYS, UNIVERSE, bits_per_key=10, sample_queries=sample)
        assert f.bits_per_key <= 10 * 1.3  # regions round up a little

    def test_hot_regions_get_finer_buckets(self):
        sample = hot_region_queries(128, seed=2)
        f = WorkloadAwareBucketing(
            KEYS, UNIVERSE, bits_per_key=8, sample_queries=sample, num_regions=16
        )
        sizes = [s for s in f.region_bucket_sizes() if s is not None]
        # region 0 is hot: its buckets must be finer than the cold median.
        hot = f.region_bucket_sizes()[0]
        cold = sorted(sizes)[len(sizes) // 2]
        assert hot is not None and hot <= cold

    def test_no_sample_falls_back_to_uniform(self):
        f = WorkloadAwareBucketing(KEYS, UNIVERSE, bits_per_key=8, sample_queries=[])
        sizes = sorted(s for s in f.region_bucket_sizes() if s is not None)
        # Near-uniform coarseness: most regions sit within a factor of 8
        # of the median (per-region key-count jitter moves the
        # power-of-two fit by a step or two, never systematically).
        median = sizes[len(sizes) // 2]
        near_median = [s for s in sizes if median / 8 <= s <= median * 8]
        assert len(near_median) >= 0.8 * len(sizes)


class TestQueries:
    def test_validation(self):
        f = WorkloadAwareBucketing(KEYS, UNIVERSE, bits_per_key=8, sample_queries=[])
        with pytest.raises(InvalidQueryError):
            f.may_contain_range(5, 1)

    def test_no_false_negatives(self):
        sample = hot_region_queries(64, seed=3)
        f = WorkloadAwareBucketing(KEYS, UNIVERSE, bits_per_key=8, sample_queries=sample)
        for k in KEYS[:200]:
            k = int(k)
            assert f.may_contain(k)
            assert f.may_contain_range(max(0, k - 9), min(UNIVERSE - 1, k + 9))

    def test_cross_region_ranges(self):
        sample = hot_region_queries(32, seed=4)
        f = WorkloadAwareBucketing(
            KEYS, UNIVERSE, bits_per_key=8, sample_queries=sample, num_regions=8
        )
        width = (UNIVERSE + 7) // 8
        # a range straddling a region boundary containing a key nearby
        boundary = width
        idx = int(np.searchsorted(np.sort(KEYS), boundary))
        key = int(np.sort(KEYS)[idx])
        assert f.may_contain_range(boundary - 100, key + 1)

    def test_beats_plain_bucketing_on_skewed_workload(self):
        """The §7 motivation: same space, lower FPR where queries live."""
        sample = hot_region_queries(128, seed=5)
        workload = hot_region_queries(800, seed=6)
        budget = 7
        adaptive = WorkloadAwareBucketing(
            KEYS, UNIVERSE, bits_per_key=budget, sample_queries=sample, num_regions=16
        )
        plain = Bucketing(KEYS, UNIVERSE, bits_per_key=budget)
        fpr_adaptive = measure_fpr(adaptive, workload).fpr
        fpr_plain = measure_fpr(plain, workload).fpr
        assert fpr_adaptive <= fpr_plain
        assert adaptive.bits_per_key <= plain.bits_per_key * 1.5

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_property(self, data):
        keys = data.draw(
            st.lists(st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=40)
        )
        regions = data.draw(st.sampled_from([1, 4, 64]))
        f = WorkloadAwareBucketing(
            keys, UNIVERSE, bits_per_key=6,
            sample_queries=[(0, 100)], num_regions=regions,
        )
        for key in keys[:10]:
            span = data.draw(st.integers(min_value=0, max_value=1000))
            lo = max(0, key - span)
            hi = min(UNIVERSE - 1, key + span)
            assert f.may_contain_range(lo, hi)
