"""Unit and property tests for the rank/select structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector
from repro.succinct.rank_select import RankSelect


def naive_rank1(flags, i):
    return sum(flags[:i])


def naive_select(flags, k, bit):
    seen = 0
    for pos, f in enumerate(flags):
        if bool(f) == bit:
            if seen == k:
                return pos
            seen += 1
    raise IndexError


class TestSmallCases:
    def test_counts(self):
        rs = RankSelect(BitVector.from_bools([1, 0, 1, 1, 0]))
        assert rs.num_ones == 3
        assert rs.num_zeros == 2

    def test_rank_boundaries(self):
        rs = RankSelect(BitVector.from_bools([1, 0, 1]))
        assert rs.rank1(0) == 0
        assert rs.rank1(3) == 2
        assert rs.rank0(3) == 1

    def test_rank_out_of_range(self):
        rs = RankSelect(BitVector(5))
        with pytest.raises(IndexError):
            rs.rank1(6)

    def test_select_on_word_boundaries(self):
        positions = [0, 63, 64, 65, 191]
        rs = RankSelect(BitVector.from_positions(192, positions))
        for k, pos in enumerate(positions):
            assert rs.select1(k) == pos

    def test_select0_basic(self):
        rs = RankSelect(BitVector.from_bools([1, 0, 0, 1, 0]))
        assert rs.select0(0) == 1
        assert rs.select0(1) == 2
        assert rs.select0(2) == 4

    def test_select_out_of_range(self):
        rs = RankSelect(BitVector.from_bools([1, 0]))
        with pytest.raises(IndexError):
            rs.select1(1)
        with pytest.raises(IndexError):
            rs.select0(1)

    def test_padding_bits_do_not_leak_into_select0(self):
        # Length 3 vector occupies one 64-bit word; the 61 padding bits
        # must never be reported as zeros of the vector.
        rs = RankSelect(BitVector.from_bools([1, 1, 1]))
        assert rs.num_zeros == 0
        with pytest.raises(IndexError):
            rs.select0(0)

    def test_all_zeros_vector(self):
        rs = RankSelect(BitVector(70))
        assert rs.num_ones == 0
        assert rs.select0(69) == 69

    def test_index_size_reported(self):
        rs = RankSelect(BitVector(1000))
        assert rs.index_size_in_bits > 0


class TestAgainstNaive:
    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_rank1_matches(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for i in range(0, len(flags) + 1, max(1, len(flags) // 17)):
            assert rs.rank1(i) == naive_rank1(flags, i)

    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_select1_matches(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for k in range(rs.num_ones):
            assert rs.select1(k) == naive_select(flags, k, True)

    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_select0_matches(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for k in range(rs.num_zeros):
            assert rs.select0(k) == naive_select(flags, k, False)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_rank_select_inverse(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for k in range(rs.num_ones):
            pos = rs.select1(k)
            assert rs.rank1(pos) == k
            assert rs.rank1(pos + 1) == k + 1
