"""Unit and property tests for the rank/select structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector
from repro.succinct.rank_select import RankSelect


def naive_rank1(flags, i):
    return sum(flags[:i])


def naive_select(flags, k, bit):
    seen = 0
    for pos, f in enumerate(flags):
        if bool(f) == bit:
            if seen == k:
                return pos
            seen += 1
    raise IndexError


class TestSmallCases:
    def test_counts(self):
        rs = RankSelect(BitVector.from_bools([1, 0, 1, 1, 0]))
        assert rs.num_ones == 3
        assert rs.num_zeros == 2

    def test_rank_boundaries(self):
        rs = RankSelect(BitVector.from_bools([1, 0, 1]))
        assert rs.rank1(0) == 0
        assert rs.rank1(3) == 2
        assert rs.rank0(3) == 1

    def test_rank_out_of_range(self):
        rs = RankSelect(BitVector(5))
        with pytest.raises(IndexError):
            rs.rank1(6)

    def test_select_on_word_boundaries(self):
        positions = [0, 63, 64, 65, 191]
        rs = RankSelect(BitVector.from_positions(192, positions))
        for k, pos in enumerate(positions):
            assert rs.select1(k) == pos

    def test_select0_basic(self):
        rs = RankSelect(BitVector.from_bools([1, 0, 0, 1, 0]))
        assert rs.select0(0) == 1
        assert rs.select0(1) == 2
        assert rs.select0(2) == 4

    def test_select_out_of_range(self):
        rs = RankSelect(BitVector.from_bools([1, 0]))
        with pytest.raises(IndexError):
            rs.select1(1)
        with pytest.raises(IndexError):
            rs.select0(1)

    def test_padding_bits_do_not_leak_into_select0(self):
        # Length 3 vector occupies one 64-bit word; the 61 padding bits
        # must never be reported as zeros of the vector.
        rs = RankSelect(BitVector.from_bools([1, 1, 1]))
        assert rs.num_zeros == 0
        with pytest.raises(IndexError):
            rs.select0(0)

    def test_all_zeros_vector(self):
        rs = RankSelect(BitVector(70))
        assert rs.num_ones == 0
        assert rs.select0(69) == 69

    def test_index_size_reported(self):
        rs = RankSelect(BitVector(1000))
        assert rs.index_size_in_bits > 0


class TestAgainstNaive:
    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_rank1_matches(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for i in range(0, len(flags) + 1, max(1, len(flags) // 17)):
            assert rs.rank1(i) == naive_rank1(flags, i)

    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_select1_matches(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for k in range(rs.num_ones):
            assert rs.select1(k) == naive_select(flags, k, True)

    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_select0_matches(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for k in range(rs.num_zeros):
            assert rs.select0(k) == naive_select(flags, k, False)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_rank_select_inverse(self, flags):
        rs = RankSelect(BitVector.from_bools(flags))
        for k in range(rs.num_ones):
            pos = rs.select1(k)
            assert rs.rank1(pos) == k
            assert rs.rank1(pos + 1) == k + 1


class TestBatchKernels:
    """The vectorised select/rank columns must equal their scalar loops."""

    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_select1_batch_matches_scalar(self, flags):
        import numpy as np

        rs = RankSelect(BitVector.from_bools(flags))
        if rs.num_ones == 0:
            assert rs.select1_batch(np.zeros(0, dtype=np.int64)).size == 0
            return
        ks = np.arange(rs.num_ones, dtype=np.int64)
        assert rs.select1_batch(ks).tolist() == [rs.select1(int(k)) for k in ks]

    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_select0_batch_matches_scalar(self, flags):
        import numpy as np

        rs = RankSelect(BitVector.from_bools(flags))
        if rs.num_zeros == 0:
            assert rs.select0_batch(np.zeros(0, dtype=np.int64)).size == 0
            return
        ks = np.arange(rs.num_zeros, dtype=np.int64)
        assert rs.select0_batch(ks).tolist() == [rs.select0(int(k)) for k in ks]

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_rank1_batch_matches_scalar(self, flags):
        import numpy as np

        rs = RankSelect(BitVector.from_bools(flags))
        pos = np.arange(len(flags) + 1, dtype=np.int64)
        assert rs.rank1_batch(pos).tolist() == [rs.rank1(int(p)) for p in pos]

    def test_batch_kernels_validate_arguments(self):
        import numpy as np

        rs = RankSelect(BitVector.from_bools([True, False, True]))
        with pytest.raises(IndexError):
            rs.select1_batch(np.asarray([2]))
        with pytest.raises(IndexError):
            rs.select0_batch(np.asarray([-1]))
        with pytest.raises(IndexError):
            rs.rank1_batch(np.asarray([4]))

    def test_unordered_and_duplicate_ranks(self):
        import numpy as np

        flags = [True, False, False, True, True, False, True] * 13
        rs = RankSelect(BitVector.from_bools(flags))
        ks = np.asarray([3, 0, 3, 2, 1, 0], dtype=np.int64)
        assert rs.select1_batch(ks).tolist() == [rs.select1(int(k)) for k in ks]
        assert rs.select0_batch(ks).tolist() == [rs.select0(int(k)) for k in ks]
