"""Tests for compaction rate limiting (TokenBucket + scheduler wiring).

The bucket is metered in *entries compacted* and admits on "balance is
positive" — a single step may overdraw it (debt), which then defers
further steps until the refill catches up. These tests drive the bucket
with a fake clock so every refill is exact, then verify the scheduler
seam: `drain()` defers on throttle without sleeping and leaves the work
queued, and `ShardedEngine(compaction_rate=...)` (and `.open`) install a
bucket the service surfaces through `stats_snapshot()`.
"""

import numpy as np
import pytest

from repro.engine import (
    CompactionScheduler,
    RangeQueryService,
    ShardedEngine,
    TokenBucket,
)
from repro.errors import InvalidParameterError
from repro.lsm.compaction import LeveledPolicy
from repro.lsm.store import LSMStore

UNIVERSE = 2**24


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket unit behaviour
# ----------------------------------------------------------------------

def test_bucket_validation():
    with pytest.raises(InvalidParameterError):
        TokenBucket(0)
    with pytest.raises(InvalidParameterError):
        TokenBucket(-5.0)
    with pytest.raises(InvalidParameterError):
        TokenBucket(100.0, burst=0)
    assert TokenBucket(100.0).burst == 100.0  # burst defaults to rate
    assert TokenBucket(100.0, burst=25.0).burst == 25.0


def test_bucket_admits_until_debt_then_refills():
    clock = FakeClock()
    bucket = TokenBucket(100.0, burst=50.0, clock=clock)
    assert bucket.ready()
    assert bucket.eta() == 0.0
    # One oversized step overdraws the bucket into debt.
    bucket.debit(150.0)
    assert bucket.balance == -100.0
    assert not bucket.ready()
    assert bucket.eta() == pytest.approx(1.0, rel=1e-6)
    # Refill at 100 entries/s: half the debt after 0.5s, ready at 1s+.
    clock.advance(0.5)
    assert not bucket.ready()
    assert bucket.eta() == pytest.approx(0.5, rel=1e-6)
    clock.advance(0.6)
    assert bucket.ready()
    assert bucket.balance == pytest.approx(10.0)


def test_bucket_balance_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(1_000.0, burst=40.0, clock=clock)
    clock.advance(60.0)  # idle for a minute: no unbounded credit
    assert bucket.balance == 40.0
    bucket.debit(39.0)
    assert bucket.ready()  # positive balance still admits
    bucket.debit(2.0)
    assert not bucket.ready()


def test_bucket_ignores_nonpositive_debits():
    clock = FakeClock()
    bucket = TokenBucket(10.0, clock=clock)
    bucket.debit(0.0)
    bucket.debit(-7.0)
    assert bucket.balance == 10.0


# ----------------------------------------------------------------------
# Scheduler seam
# ----------------------------------------------------------------------

def make_store():
    return LSMStore(
        UNIVERSE,
        memtable_limit=16,
        compaction_fanout=2,
        filter_factory=None,
        auto_compact=False,
        compaction_policy=LeveledPolicy(slice_target=64),
    )


def fill(store, n, seed=3):
    rng = np.random.default_rng(seed)
    for key in rng.choice(UNIVERSE, size=n, replace=False):
        store.put(int(key), b"v")
    store.flush()


def test_throttle_wait_counts_and_reports_eta():
    clock = FakeClock()
    bucket = TokenBucket(100.0, burst=10.0, clock=clock)
    scheduler = CompactionScheduler(rate_limiter=bucket)
    assert scheduler.throttle_wait() == 0.0
    assert scheduler.compactions_throttled == 0
    bucket.debit(60.0)
    wait = scheduler.throttle_wait()
    assert wait == pytest.approx(0.5, rel=1e-6)
    assert scheduler.compactions_throttled == 1
    clock.advance(1.0)
    assert scheduler.throttle_wait() == 0.0
    assert scheduler.compactions_throttled == 1


def test_drain_defers_on_throttle_and_keeps_work_queued():
    clock = FakeClock()
    # Tiny burst: the first step's debit puts the bucket deep in debt.
    bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
    scheduler = CompactionScheduler(rate_limiter=bucket)
    store = make_store()
    fill(store, 400)
    fill(store, 400, seed=4)
    assert store.needs_compaction
    scheduler.notify(0, store)

    # The first step is admitted (balance starts positive) and its
    # ~800-entry debit then buries the burst-1 bucket in debt.
    first = scheduler.drain()
    assert first >= 1
    assert bucket.balance < 0

    # New work arriving while the bucket is in debt stays queued: the
    # drain defers without running a step and without sleeping.
    fill(store, 400, seed=5)
    fill(store, 400, seed=6)
    assert store.needs_compaction
    scheduler.notify(0, store)
    assert scheduler.drain() == 0
    assert store.needs_compaction
    assert scheduler.compactions_throttled >= 1
    assert scheduler.pending_shards == (0,)  # still queued, not dropped
    # ...and once the (fake) refill catches up, the drain resumes the
    # queued shard to completion.
    total = first
    for _ in range(1_000):
        clock.advance(bucket.eta() + 1e-6)
        stepped = scheduler.drain()
        total += stepped
        if not store.needs_compaction:
            break
    assert not store.needs_compaction
    assert total > first
    assert scheduler.compactions_run == total


def test_set_rate_limiter_swaps_live():
    scheduler = CompactionScheduler()
    assert scheduler.rate_limiter is None
    store = make_store()
    fill(store, 400)
    fill(store, 400, seed=5)
    scheduler.notify(0, store)
    clock = FakeClock()
    throttled = TokenBucket(1.0, burst=1.0, clock=clock)
    throttled.debit(10_000.0)
    scheduler.set_rate_limiter(throttled)
    assert scheduler.drain() == 0  # fully throttled
    scheduler.set_rate_limiter(None)
    assert scheduler.drain() > 0  # unthrottled again
    assert not store.needs_compaction


# ----------------------------------------------------------------------
# Engine / service wiring
# ----------------------------------------------------------------------

def seed_engine(engine, n=1_500, seed=9):
    rng = np.random.default_rng(seed)
    for key in np.unique(rng.integers(0, UNIVERSE, n, dtype=np.uint64)):
        engine.put(int(key), b"v")


def test_engine_compaction_rate_installs_bucket():
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=64,
        compaction_fanout=2, filter_factory=None,
        compaction_rate=123.5,
    )
    limiter = engine.scheduler.rate_limiter
    assert isinstance(limiter, TokenBucket)
    assert limiter.rate == 123.5
    assert ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=64,
        compaction_fanout=2, filter_factory=None,
    ).scheduler.rate_limiter is None


def test_engine_open_accepts_compaction_rate(tmp_path):
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=64,
        compaction_fanout=2, filter_factory=None,
        directory=tmp_path / "db",
    )
    seed_engine(engine)
    engine.flush_all()
    engine.drain_compactions()
    engine.checkpoint()
    reopened = ShardedEngine.open(tmp_path / "db", compaction_rate=77.0)
    limiter = reopened.scheduler.rate_limiter
    assert isinstance(limiter, TokenBucket)
    assert limiter.rate == 77.0
    assert ShardedEngine.open(tmp_path / "db").scheduler.rate_limiter is None


def test_rate_limited_engine_still_converges():
    """Queries stay correct while compaction is throttled, and the
    backlog drains once the limiter is lifted."""
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=64,
        compaction_fanout=2, filter_factory=None,
        compaction_rate=1e12,  # huge burst: never actually defers
    )
    seed_engine(engine)
    engine.flush_all()
    engine.drain_compactions()
    clock = FakeClock()
    starved = TokenBucket(1.0, burst=1.0, clock=clock)
    starved.debit(10_000.0)
    engine.scheduler.set_rate_limiter(starved)
    seed_engine(engine, n=800, seed=10)
    engine.flush_all()
    engine.drain_compactions()  # fully throttled: backlog stays queued
    rng = np.random.default_rng(11)
    los = rng.integers(0, UNIVERSE - 32, 200, dtype=np.uint64)
    his = los + np.uint64(31)
    throttled_answers = engine.batch_range_empty(los, his)
    engine.scheduler.set_rate_limiter(None)
    engine.drain_compactions()
    assert bool(
        (engine.batch_range_empty(los, his) == throttled_answers).all()
    )


def test_service_snapshot_surfaces_rate_limit_and_levels():
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=64,
        compaction_fanout=2, filter_factory=None,
        compaction_rate=5_000.0,
    )
    seed_engine(engine)
    engine.flush_all()
    with RangeQueryService(engine, num_threads=2) as service:
        engine.drain_compactions()
        snapshot = service.stats_snapshot()
        assert snapshot["compaction"]["rate_limit"] == 5_000.0
        assert snapshot["compaction"]["throttled_steps"] >= 0
        levels = snapshot["engine"]["levels"]
        assert levels and levels[0]["level"] == 0
    engine.scheduler.set_rate_limiter(None)
