"""Tests for the concurrent serving layer.

Covers the pieces :mod:`repro.engine.service` introduces: the
reader/writer lock, the sharded block cache (and its fold into
``IoStats``), block-granular SSTable access, and the
:class:`RangeQueryService` itself — parity with the single-threaded
engine, background compaction, checkpoint/reopen under locks, and a
concurrent reader/writer hammer.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.grafite import Grafite
from repro.engine import RangeQueryService, RWLock, ShardedEngine
from repro.errors import InvalidParameterError
from repro.lsm import BLOCK_ENTRIES, BlockCache, LSMStore, SSTable

UNIVERSE = 2**32


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=14, max_range_size=64, seed=7)


def build_engine(**kwargs):
    defaults = dict(
        num_shards=4, memtable_limit=128, filter_factory=grafite_factory
    )
    defaults.update(kwargs)
    return ShardedEngine(UNIVERSE, **defaults)


def load_keys(target, n=3000, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, UNIVERSE, n, dtype=np.uint64)
    for key in keys:
        target.put(int(key), int(key) % 251)
    return np.unique(keys)


# ----------------------------------------------------------------------
# Reader/writer lock
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        def writer(tag):
            with lock.write_locked():
                log.append(f"{tag}-in")
                time.sleep(0.02)
                log.append(f"{tag}-out")

        def reader():
            with lock.read_locked():
                log.append("r")

        lock.acquire_write()
        threads = [
            threading.Thread(target=writer, args=("w",)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)
        assert log == []  # everyone blocked behind the held write lock
        lock.release_write()
        for t in threads:
            t.join(timeout=5.0)
        # The writer's critical section was never interleaved.
        w_in = log.index("w-in")
        assert log[w_in + 1] == "w-out"

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        order = []

        def writer():
            lock.acquire_write()
            order.append("w")
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("r")
            lock.release_read()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.02)  # writer is now queued
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.02)
        assert order == []  # late reader must queue behind the writer
        lock.release_read()
        w.join(timeout=5.0)
        r.join(timeout=5.0)
        assert order == ["w", "r"]


# ----------------------------------------------------------------------
# SSTable blocks + block cache
# ----------------------------------------------------------------------
class TestBlocks:
    def make_run(self, n):
        return SSTable([(i * 10, i) for i in range(n)], UNIVERSE)

    def test_block_layout_and_reads(self):
        run = self.make_run(BLOCK_ENTRIES * 2 + 5)
        assert run.block_count == 3
        before = run.io_reads
        block = run.read_block(2)
        assert run.io_reads == before + 1
        assert len(block) == 5
        with pytest.raises(IndexError):
            run.read_block(3)

    def test_block_span_matches_scan(self):
        run = self.make_run(BLOCK_ENTRIES + 10)
        top = (BLOCK_ENTRIES + 9) * 10
        for lo, hi in [
            (0, 0), (5, 5), (0, top), (top, top), (top + 1, top + 500),
            (3, 47), (BLOCK_ENTRIES * 10 - 1, BLOCK_ENTRIES * 10 + 1),
        ]:
            span = run.block_span(lo, hi)
            expected = run.scan(lo, hi)
            got = []
            if span is not None:
                for b in range(span[0], span[1] + 1):
                    got.extend(
                        (k, v) for k, v in run.read_block(b) if lo <= k <= hi
                    )
            assert got == expected, (lo, hi)

    def test_span_before_first_key_is_free(self):
        run = SSTable([(100, "x")], UNIVERSE)
        assert run.block_span(0, 99) is None
        assert run.block_span(100, 100) == (0, 0)
        assert run.block_span(101, 500) == (0, 0)  # costs one wasted block

    def test_cache_hits_and_lru_eviction(self):
        run = self.make_run(BLOCK_ENTRIES * 4)
        cache = BlockCache(2, num_stripes=1)
        cache.get_block(run, 0)
        _, hit = cache.get_block(run, 0)
        assert hit
        cache.get_block(run, 1)
        cache.get_block(run, 2)  # evicts block 0 (capacity 2, LRU)
        _, hit = cache.get_block(run, 0)
        assert not hit
        assert cache.misses == 4 and cache.hits == 1
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_uids_never_alias(self):
        a = SSTable([(1, "a")], UNIVERSE)
        b = SSTable([(1, "b")], UNIVERSE)
        cache = BlockCache(16)
        assert cache.scan(a, 0, 10)[0] == [(1, "a")]
        assert cache.scan(b, 0, 10)[0] == [(1, "b")]

    def test_scan_through_cache_equals_direct(self):
        rng = np.random.default_rng(3)
        keys = np.unique(rng.integers(0, 10_000, 2000, dtype=np.uint64))
        run = SSTable([(int(k), int(k)) for k in keys], UNIVERSE)
        cache = BlockCache(64)
        for lo, hi in rng.integers(0, 10_000, (200, 2)):
            lo, hi = int(min(lo, hi)), int(max(lo, hi))
            assert cache.scan(run, lo, hi)[0] == run.scan(lo, hi)

    def test_store_folds_cache_counters(self):
        store = LSMStore(UNIVERSE, memtable_limit=64)
        for key in range(0, 6400, 10):
            store.put(key, key)
        store.flush()
        store.attach_cache(BlockCache(64))
        store.range_scan(0, 600)
        assert store.stats.cache_misses > 0
        misses = store.stats.cache_misses
        store.range_scan(0, 600)
        assert store.stats.cache_hits > 0
        assert store.stats.cache_misses == misses
        assert 0.0 < store.stats.cache_hit_ratio <= 1.0

    def test_cache_validation(self):
        with pytest.raises(InvalidParameterError):
            BlockCache(0)
        with pytest.raises(InvalidParameterError):
            BlockCache(8, num_stripes=0)
        with pytest.raises(InvalidParameterError):
            BlockCache(8, miss_latency=-1.0)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class TestRangeQueryService:
    @pytest.mark.parametrize("num_threads", [1, 2, 8])
    def test_batch_matches_engine(self, num_threads):
        engine = build_engine()
        keys = load_keys(engine)
        engine.flush_all()
        engine.drain_compactions()
        rng = np.random.default_rng(1)
        los = rng.integers(0, UNIVERSE - 200, 4000, dtype=np.uint64)
        his = los + rng.integers(0, 128, 4000, dtype=np.uint64)
        reference = engine.batch_range_empty(los, his)
        with RangeQueryService(engine, num_threads=num_threads) as svc:
            got = svc.batch_range_empty(los, his)
            assert (got == reference).all()
            # And the scalar service path agrees with the batch path.
            for i in range(0, 200):
                assert svc.range_empty(int(los[i]), int(his[i])) == got[i]

    def test_batch_with_boundary_straddling_queries(self):
        """Straddlers take the atomic multi-lock path; results must still
        match the single-threaded engine exactly."""
        engine = build_engine(num_shards=8)
        load_keys(engine, n=2000, seed=4)
        engine.flush_all()
        engine.drain_compactions()
        width = engine.router.shard_width
        los, his = [], []
        for sid in range(1, 8):  # a window around every shard boundary
            boundary = sid * width
            los.append(boundary - 500)
            his.append(boundary + 500)
        los += [0, UNIVERSE - 1000]
        his += [UNIVERSE - 1, UNIVERSE - 1]  # full-universe + tail ranges
        los = np.asarray(los, dtype=np.uint64)
        his = np.asarray(his, dtype=np.uint64)
        reference = engine.batch_range_empty(los, his)
        with RangeQueryService(engine, num_threads=4) as svc:
            assert (svc.batch_range_empty(los, his) == reference).all()

    def test_point_ops_and_cross_shard_probe(self):
        engine = build_engine(num_shards=8)
        with RangeQueryService(engine, num_threads=4) as svc:
            svc.put(5, "five")
            svc.put(UNIVERSE - 3, "last")
            assert svc.get(5) == "five"
            assert svc.get(UNIVERSE - 3) == "last"
            # Spans all eight shards; both endpoints live in different ones.
            assert not svc.range_empty(0, UNIVERSE - 1)
            svc.delete(5)
            assert svc.get(5) is None
            assert svc.range_empty(0, UNIVERSE // 8 - 1)

    def test_background_compaction_runs(self):
        engine = build_engine(memtable_limit=32, compaction_fanout=3)
        with RangeQueryService(engine, num_threads=2) as svc:
            load_keys(svc, n=2000)
            assert svc.wait_for_compactions(timeout=20.0)
            assert svc.background_compactions > 0
            assert engine.scheduler.compactions_run >= svc.background_compactions
            # The worker kept level 0 under control on every shard.
            for store in engine.shards:
                assert not store.needs_compaction

    def test_batch_queries_do_not_drain_inline(self):
        """Compactions queued by writes stay off the query path."""
        engine = build_engine(memtable_limit=16, compaction_fanout=2)
        # Very slow poll so the worker cannot steal the queued work
        # before the batch runs.
        svc = RangeQueryService(engine, num_threads=2, compaction_poll=30.0)
        try:
            for key in range(0, 4096, 4):
                svc.put(key, b"v")
            pending_before = len(engine.scheduler)
            assert pending_before > 0
            svc.batch_range_empty(np.asarray([1]), np.asarray([2**20]))
            assert len(engine.scheduler) >= pending_before
        finally:
            svc.close()

    def test_checkpoint_and_reopen(self, tmp_path):
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=64,
            filter_factory=grafite_factory, directory=tmp_path / "db",
        )
        with RangeQueryService(engine, num_threads=2) as svc:
            keys = load_keys(svc, n=500, seed=9)
            svc.checkpoint()
        engine.close(checkpoint=False)
        reopened = ShardedEngine.open(
            tmp_path / "db", filter_factory=grafite_factory
        )
        with RangeQueryService(reopened, num_threads=2) as svc:
            for key in keys[:100]:
                assert svc.get(int(key)) == int(key) % 251

    def test_closed_service_rejects_calls(self):
        svc = RangeQueryService(build_engine(), num_threads=1)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(InvalidParameterError):
            svc.get(1)
        with pytest.raises(InvalidParameterError):
            svc.put(1, "x")

    def test_validation(self):
        engine = build_engine()
        with pytest.raises(InvalidParameterError):
            RangeQueryService(engine, num_threads=0)
        with pytest.raises(InvalidParameterError):
            RangeQueryService(engine, compaction_poll=0.0)

    def test_cache_disabled(self):
        engine = build_engine()
        with RangeQueryService(engine, cache_blocks=0) as svc:
            assert svc.cache is None
            svc.put(1, "x")
            assert svc.get(1) == "x"
        assert engine.block_cache is None

    def test_concurrent_hammer(self):
        """Writers on disjoint key slices race readers and the compactor;
        the final state must be exactly the union of all writes."""
        engine = build_engine(num_shards=4, memtable_limit=64)
        n_writers, per_writer = 4, 400
        with RangeQueryService(engine, num_threads=4) as svc:
            errors = []

            def writer(slot):
                try:
                    for i in range(per_writer):
                        key = slot * per_writer + i
                        svc.put(key * 1000, slot)
                        if i % 7 == 0:
                            svc.get(key * 1000)
                        if i % 13 == 0:
                            svc.range_empty(0, 10_000)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=writer, args=(s,))
                for s in range(n_writers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors
            assert svc.wait_for_compactions(timeout=20.0)
            for slot in range(n_writers):
                for i in range(0, per_writer, 29):
                    key = (slot * per_writer + i) * 1000
                    assert svc.get(key) == slot
            assert len(engine) == n_writers * per_writer


# ----------------------------------------------------------------------
# Process-mode serving (snapshot workers + epoch handshake)
# ----------------------------------------------------------------------
class TestProcessMode:
    def build_persistent(self, tmp_path, **kwargs):
        return build_engine(directory=tmp_path / "db", **kwargs)

    def test_requires_persistent_engine(self):
        engine = build_engine()
        with pytest.raises(InvalidParameterError):
            RangeQueryService(engine, mode="process")
        with pytest.raises(InvalidParameterError):
            RangeQueryService(engine, mode="carrier-pigeon")

    @pytest.mark.parametrize("workers", [1, 3])
    def test_batch_matches_engine_and_uses_workers(self, tmp_path, workers):
        engine = self.build_persistent(tmp_path)
        keys = load_keys(engine, n=2500, seed=3)
        engine.flush_all()
        rng = np.random.default_rng(4)
        los = rng.integers(0, UNIVERSE - 5000, 800, dtype=np.uint64)
        his = los + rng.integers(0, 5000, 800, dtype=np.uint64)
        reference = engine.batch_range_empty(los, his)
        with RangeQueryService(
            engine, num_threads=2, mode="process", num_workers=workers,
            cache_blocks=0,
        ) as service:
            assert service.mode == "process"
            assert service.num_workers == workers
            # Let the background worker drain load-time compactions (each
            # would dirty its shard's epoch), then take a clean checkpoint.
            assert service.wait_for_compactions(timeout=10.0)
            service.checkpoint()
            got = service.batch_range_empty(los, his)
            assert bool((got == reference).all())
            # Post-checkpoint epoch is clean and nothing sits in the
            # memtables: every probe must have gone to a worker.
            assert service.worker_queries == 800
            assert service.local_queries == 0
        engine.close()

    def test_flush_invalidates_and_checkpoint_resyncs(self, tmp_path):
        engine = self.build_persistent(tmp_path, memtable_limit=64)
        load_keys(engine, n=1500, seed=5)
        engine.flush_all()
        rng = np.random.default_rng(6)
        los = rng.integers(0, UNIVERSE - 1000, 300, dtype=np.uint64)
        his = los + rng.integers(0, 1000, 300, dtype=np.uint64)
        with RangeQueryService(
            engine, num_threads=2, mode="process", num_workers=2, cache_blocks=0,
        ) as service:
            assert service.wait_for_compactions(timeout=10.0)
            service.checkpoint()  # clean epoch after load-time compactions
            service.batch_range_empty(los, his)
            base_worker = service.worker_queries
            assert base_worker == 300
            # Enough writes to overflow a few memtables: flushes bump
            # runs_version, so those shards must leave the worker path.
            for key in rng.integers(0, UNIVERSE, 400, dtype=np.uint64):
                service.put(int(key), b"w")
            scalar = [engine.range_empty(int(l), int(h)) for l, h in zip(los, his)]
            got = service.batch_range_empty(los, his)
            assert got.tolist() == scalar
            assert service.local_queries > 0, "dirty shards must serve locally"
            # The epoch boundary: checkpoint hands workers the new runs.
            service.checkpoint()
            mid_worker = service.worker_queries
            got = service.batch_range_empty(los, his)
            assert got.tolist() == scalar
            assert service.worker_queries == mid_worker + 300
        engine.close()

    def test_memtable_overlap_falls_back_per_query(self, tmp_path):
        engine = self.build_persistent(tmp_path, memtable_limit=10_000)
        load_keys(engine, n=1200, seed=7)
        engine.flush_all()
        with RangeQueryService(
            engine, num_threads=2, mode="process", num_workers=2, cache_blocks=0,
        ) as service:
            # One unflushed write: the memtable holds exactly {probe_key}.
            probe_key = 12345
            service.put(probe_key, b"fresh")
            los = np.asarray([probe_key - 5, probe_key + 100], dtype=np.uint64)
            his = np.asarray([probe_key + 5, probe_key + 200], dtype=np.uint64)
            got = service.batch_range_empty(los, his)
            assert not got[0], "the overlapping query must see the fresh write"
            assert service.local_queries == 1, "only the overlap goes local"
            assert service.worker_queries == 1
        engine.close()

    def test_reopen_after_process_service(self, tmp_path):
        """Close/reopen around a process-mode service preserves state —
        the init checkpoint and WAL interplay must not lose writes."""
        engine = self.build_persistent(tmp_path)
        load_keys(engine, n=600, seed=8)
        with RangeQueryService(
            engine, num_threads=1, mode="process", num_workers=1, cache_blocks=0,
        ) as service:
            service.put(77, b"x")
            service.delete(78)
        engine.close(checkpoint=False)
        reopened = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
        assert reopened.get(77) == b"x"
        assert reopened.get(78) is None
        reopened.close()

    def test_worker_pool_validation(self, tmp_path):
        from repro.engine import ShardWorkerPool

        engine = self.build_persistent(tmp_path)
        engine.checkpoint()
        with pytest.raises(InvalidParameterError):
            ShardWorkerPool(engine.directory, 4, 0)
        with pytest.raises(InvalidParameterError):
            ShardWorkerPool(engine.directory, 4, 2, slot_count=0)
        engine.close()

    def test_worker_stats_fold_into_ledger(self, tmp_path):
        engine = self.build_persistent(tmp_path)
        keys = load_keys(engine, n=2000, seed=9)
        engine.flush_all()
        with RangeQueryService(
            engine, num_threads=2, mode="process", num_workers=2, cache_blocks=0,
        ) as service:
            assert service.wait_for_compactions(timeout=10.0)
            service.checkpoint()  # clean epoch after load-time compactions
            before = engine.stats.total_filter_decisions
            # Probes centred on stored keys: every one verifies against a
            # run inside the worker, so the folded ledger must move.
            los = keys[:200]
            his = np.minimum(los + np.uint64(2), np.uint64(UNIVERSE - 1))
            got = service.batch_range_empty(los, his)
            assert not got.any()
            assert service.worker_queries == 200
            assert engine.stats.total_filter_decisions > before
        engine.close()

    def test_dead_worker_falls_back_to_local_path(self, tmp_path):
        """SIGKILL a snapshot worker mid-service: queries must keep
        answering exactly (local fallback), never raise, and the next
        checkpoint must not fail either."""
        import os
        import signal
        import warnings as _warnings

        engine = self.build_persistent(tmp_path)
        load_keys(engine, n=1000, seed=11)
        engine.flush_all()
        rng = np.random.default_rng(12)
        los = rng.integers(0, UNIVERSE - 1000, 200, dtype=np.uint64)
        his = los + rng.integers(0, 1000, 200, dtype=np.uint64)
        with RangeQueryService(
            engine, num_threads=2, mode="process", num_workers=2, cache_blocks=0,
        ) as service:
            assert service.wait_for_compactions(timeout=10.0)
            service.checkpoint()
            scalar = [engine.range_empty(int(l), int(h)) for l, h in zip(los, his)]
            assert service.batch_range_empty(los, his).tolist() == scalar
            # Murder worker 0 the way the OOM killer would.
            victim = service._workers._handles[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            got = service.batch_range_empty(los, his)
            assert got.tolist() == scalar, "fallback answers must stay exact"
            assert service.local_queries > 0
            # Checkpoint (reload handshake) survives the dead worker too.
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", RuntimeWarning)
                service.checkpoint()
            assert service.batch_range_empty(los, his).tolist() == scalar
        engine.close()

    def test_worker_cache_replica_folds_hits_home(self, tmp_path):
        """With a cache configured, worker-side verification runs behind a
        per-worker cache replica whose hit/miss counters fold into the
        engine ledger — so process-mode runs stay comparable to thread
        mode under a simulated device."""
        engine = self.build_persistent(tmp_path)
        keys = load_keys(engine, n=1500, seed=13)
        engine.flush_all()
        with RangeQueryService(
            engine, num_threads=2, mode="process", num_workers=2,
            cache_blocks=512,
        ) as service:
            assert service.wait_for_compactions(timeout=10.0)
            service.checkpoint()
            los = keys[:300]
            his = np.minimum(los + np.uint64(2), np.uint64(UNIVERSE - 1))
            before = engine.stats.cache_hits + engine.stats.cache_misses
            got = service.batch_range_empty(los, his)
            assert not got.any()
            assert service.worker_queries == 300
            after = engine.stats.cache_hits + engine.stats.cache_misses
            assert after > before, "worker cache traffic must fold into IoStats"
        engine.close()

# ----------------------------------------------------------------------
# Structured stats snapshot (what the CLI summary, the network stats op,
# and the front door's admission control all read)
# ----------------------------------------------------------------------
class TestStatsSnapshot:
    def test_snapshot_is_json_serialisable_and_complete(self):
        import json

        engine = build_engine()
        load_keys(engine, n=1500, seed=20)
        engine.flush_all()
        with RangeQueryService(engine, num_threads=2, cache_blocks=256) as service:
            los = np.arange(100, dtype=np.uint64) * np.uint64(1000)
            service.batch_range_empty(los, los + np.uint64(50))
            snap = service.stats_snapshot()
        json.dumps(snap)  # must round-trip the wire's JSON stats op
        assert snap["mode"] == "thread"
        assert snap["threads"] == 2
        for section in ("compaction", "queries", "cache", "io", "engine"):
            assert section in snap
        comp = snap["compaction"]
        assert comp["backlog"] == comp["queue_depth"] + comp["inflight"]
        assert comp["total_steps"] >= comp["background_steps"] >= 0
        assert snap["io"]["flushes"] == engine.stats.flushes
        assert snap["engine"]["shards"] == 4

    def test_snapshot_cache_section_tracks_cache(self):
        engine = build_engine()
        keys = load_keys(engine, n=1500, seed=21)
        engine.flush_all()
        with RangeQueryService(engine, num_threads=2, cache_blocks=256) as service:
            los = keys[:200]
            his = np.minimum(los + np.uint64(2), np.uint64(UNIVERSE - 1))
            service.batch_range_empty(los, his)
            service.batch_range_empty(los, his)  # second pass hits
            snap = service.stats_snapshot()
        cache = snap["cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_ratio"] <= 1.0
        assert cache["resident_blocks"] <= cache["capacity_blocks"] == 256

    def test_snapshot_without_cache_is_none_and_closed_flag(self):
        engine = build_engine()
        load_keys(engine, n=500, seed=22)
        service = RangeQueryService(engine, num_threads=1, cache_blocks=0)
        assert service.stats_snapshot()["cache"] is None
        assert service.stats_snapshot()["closed"] is False
        service.close()
        assert service.stats_snapshot()["closed"] is True
