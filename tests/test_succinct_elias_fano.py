"""Unit and property tests for the Elias-Fano sequence.

The property tests compare every operation against a naive sorted-list
reference, which is the ground truth the paper's predecessor-based query
algorithm (Algorithm 2) relies on.
"""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.succinct.elias_fano import EliasFano


def naive_predecessor(sorted_values, y):
    i = bisect.bisect_right(sorted_values, y)
    return None if i == 0 else sorted_values[i - 1]


def naive_successor(sorted_values, y):
    i = bisect.bisect_left(sorted_values, y)
    return None if i == len(sorted_values) else sorted_values[i]


class TestConstruction:
    def test_empty_sequence(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.first is None and ef.last is None
        assert ef.predecessor(100) is None
        assert ef.successor(0) is None
        assert ef.rank_leq(5) == 0

    def test_rejects_descending_input(self):
        with pytest.raises(InvalidParameterError):
            EliasFano([5, 3])

    def test_rejects_value_outside_universe(self):
        with pytest.raises(InvalidParameterError):
            EliasFano([10], universe=10)

    def test_rejects_bad_universe(self):
        with pytest.raises(InvalidParameterError):
            EliasFano([], universe=0)

    def test_duplicates_supported(self):
        ef = EliasFano([4, 4, 4, 9])
        assert list(ef) == [4, 4, 4, 9]
        assert ef.rank_leq(4) == 3

    def test_paper_example(self):
        """Example 3.2/3.3 of the paper: hash codes with r=100, l=3."""
        codes = sorted([14, 53, 55, 6, 51, 94, 70, 91, 32, 66])
        ef = EliasFano(codes, universe=100)
        assert ef.low_bits == 3
        assert list(ef) == codes
        # Example 3.3: predecessor(52) = 51 >= h(a)=49 -> "not empty".
        assert ef.predecessor(52) == 51

    def test_space_bound(self):
        """Space must stay within n*ceil(log2(u/n)) + 2n bits."""
        n, u = 1000, 2**20
        values = sorted(set(range(0, u, u // n)))[:n]
        ef = EliasFano(values, universe=u)
        bound = len(values) * ((u // len(values)).bit_length()) + 2 * len(values)
        assert ef.size_in_bits <= bound + 64  # +word slack


class TestAccess:
    def test_access_and_iter(self):
        values = [0, 1, 5, 100, 1000, 1000, 4095]
        ef = EliasFano(values, universe=4096)
        assert [ef.access(i) for i in range(len(values))] == values
        assert list(ef) == values

    def test_access_out_of_range(self):
        ef = EliasFano([1, 2])
        with pytest.raises(IndexError):
            ef.access(2)

    def test_first_last(self):
        ef = EliasFano([7, 9, 11], universe=50)
        assert ef.first == 7
        assert ef.last == 11


class TestPredecessorSuccessor:
    def test_predecessor_below_first(self):
        ef = EliasFano([10, 20])
        assert ef.predecessor(9) is None
        assert ef.predecessor(10) == 10

    def test_successor_above_last(self):
        ef = EliasFano([10, 20])
        assert ef.successor(21) is None
        assert ef.successor(20) == 20

    def test_contains_in_range(self):
        ef = EliasFano([10, 20, 30], universe=100)
        assert ef.contains_in_range(15, 25)
        assert ef.contains_in_range(20, 20)
        assert not ef.contains_in_range(21, 29)
        assert not ef.contains_in_range(25, 15)  # inverted range

    def test_dense_universe(self):
        # u == n forces l == 0 (no low bits at all).
        values = list(range(64))
        ef = EliasFano(values, universe=64)
        assert ef.low_bits == 0
        for y in range(64):
            assert ef.predecessor(y) == y

    @given(
        st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=200),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_sorted_list_reference(self, raw, data):
        values = sorted(raw)
        universe = values[-1] + data.draw(st.integers(min_value=1, max_value=2**20))
        ef = EliasFano(values, universe=universe)
        probes = data.draw(
            st.lists(st.integers(min_value=0, max_value=universe - 1), min_size=1, max_size=30)
        )
        # Also probe near stored values to hit bucket-boundary branches.
        probes += [values[0], values[-1], max(0, values[0] - 1)]
        for y in probes:
            assert ef.predecessor(y) == naive_predecessor(values, y)
            assert ef.successor(y) == naive_successor(values, y)
            assert ef.rank_leq(y) == bisect.bisect_right(values, y)

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_access_round_trip(self, raw):
        values = sorted(raw)
        ef = EliasFano(values)
        assert list(ef) == values


class TestBatchKernels:
    """Succinct bulk kernels vs. their scalar counterparts."""

    @given(
        st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=0, max_size=200),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_predecessor_index_batch_matches_scalar(self, raw, data):
        import numpy as np

        values = sorted(raw)
        universe = (values[-1] + 1 if values else 1) + data.draw(
            st.integers(min_value=0, max_value=2**18)
        )
        ef = EliasFano(values, universe=universe)
        ys = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=universe - 1),
                    min_size=1,
                    max_size=40,
                )
            ),
            dtype=np.uint64,
        )
        indices, vals = ef.predecessor_index_batch(ys)
        ranks = ef.rank_leq_batch(ys)
        for k, y in enumerate(ys):
            want = ef.predecessor_index(int(y))
            got = None if indices[k] == -1 else (int(indices[k]), int(vals[k]))
            assert got == want, f"probe {int(y)}"
            assert int(ranks[k]) == ef.rank_leq(int(y))

    @given(
        st.lists(st.integers(min_value=0, max_value=50_000), min_size=1, max_size=150),
    )
    @settings(max_examples=40, deadline=None)
    def test_access_batch_and_bucket_bounds(self, raw):
        import numpy as np

        values = sorted(raw)
        ef = EliasFano(values)
        idx = np.arange(len(values), dtype=np.int64)
        assert ef.access_batch(idx).tolist() == values
        highs = np.unique(
            (np.asarray(values, dtype=np.uint64) >> np.uint64(ef.low_bits)).astype(
                np.int64
            )
        )
        i, j = ef.bucket_bounds_batch(highs)
        for k, p in enumerate(highs):
            assert (int(i[k]), int(j[k])) == ef._bucket_bounds(int(p))

    def test_contains_batch_small_batches_skip_the_decode(self):
        """Small batches on a large, never-decoded sequence must take the
        succinct kernel path (no ``64n`` materialisation) and still agree
        with the scalar probe."""
        import numpy as np

        rng = np.random.default_rng(7)
        values = np.unique(rng.integers(0, 2**30, 5000, dtype=np.uint64))
        ef = EliasFano(values, universe=2**30)
        los = rng.integers(0, 2**30 - 1000, 32, dtype=np.uint64)
        his = los + rng.integers(0, 1000, 32, dtype=np.uint64)
        got = ef.contains_in_range_batch(los, his)
        assert ef._decoded is None, "a 32-query batch must not decode 5000 codes"
        for k in range(los.size):
            assert bool(got[k]) == ef.contains_in_range(int(los[k]), int(his[k]))

    def test_contains_batch_large_batches_amortise_a_decode(self):
        import numpy as np

        rng = np.random.default_rng(8)
        values = np.unique(rng.integers(0, 2**20, 400, dtype=np.uint64))
        ef = EliasFano(values, universe=2**20)
        los = rng.integers(0, 2**20 - 64, 512, dtype=np.uint64)
        his = los + rng.integers(0, 64, 512, dtype=np.uint64)
        got = ef.contains_in_range_batch(los, his)
        assert ef._decoded is not None, "a 512-query batch amortises the decode"
        for k in range(0, los.size, 7):
            assert bool(got[k]) == ef.contains_in_range(int(los[k]), int(his[k]))
