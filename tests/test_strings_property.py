"""Property tests for the string-key encoding layer (ISSUE 9).

Two consumers share :func:`~repro.core.strings.encode_string` and must
never disagree about order:

* :class:`StringGrafite` treats over-long query endpoints
  *conservatively* — truncation may only widen a range (false positives
  allowed, false negatives never);
* :class:`StringKeyCodec` threads string keys through the integer
  engine and must be *exact* — a storable key is inside the encoded
  integer range iff it is inside the original string range.

The hypothesis properties below pin both contracts over random byte
strings, including the regression this PR fixes: a truncated high
endpoint whose round-up would overflow the key width (an all-``0xFF``
truncation) must saturate at the universe top instead of crashing or
producing an out-of-range endpoint.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strings import (
    StringGrafite,
    StringKeyCodec,
    decode_string,
    encode_endpoint,
    encode_string,
)
from repro.errors import InvalidQueryError

BYTES = st.binary(min_size=0, max_size=10)
#: Storable keys for exactness properties: canonical (no trailing NULs,
#: which the encoding deliberately identifies with their stripped form).
CANONICAL = st.binary(min_size=0, max_size=6).map(lambda b: b.rstrip(b"\x00"))
WIDTHS = st.integers(min_value=1, max_value=6)


# ----------------------------------------------------------------------
# encode_string: order preservation (satellite property #1)
# ----------------------------------------------------------------------
@given(BYTES, BYTES, WIDTHS)
@settings(max_examples=200, deadline=None)
def test_encode_string_preserves_order(a, b, width):
    """``a < b  ⇒  enc(a) ≤ enc(b)`` for storable keys.

    Equality is allowed exactly when the two keys differ only by
    trailing NUL padding — the encoding's one documented collision."""
    a, b = a[:width], b[:width]
    ea, eb = encode_string(a, width), encode_string(b, width)
    if a < b:
        assert ea <= eb
        if ea == eb:
            assert b.rstrip(b"\x00") == a.rstrip(b"\x00")
    elif a == b:
        assert ea == eb


@given(CANONICAL, WIDTHS)
@settings(max_examples=200, deadline=None)
def test_encode_decode_round_trip(key, width):
    key = key[:width].rstrip(b"\x00")
    assert decode_string(encode_string(key, width), width) == key


# ----------------------------------------------------------------------
# encode_endpoint: width-truncation monotonicity (satellite property #2)
# ----------------------------------------------------------------------
@given(BYTES, BYTES, WIDTHS)
@settings(max_examples=200, deadline=None)
def test_endpoint_low_side_is_monotone(a, b, width):
    """The round-down encoding is monotone in plain byte order, at any
    width — truncating a low endpoint can only move it down."""
    if a > b:
        a, b = b, a
    assert encode_endpoint(a, width, round_up=False) <= encode_endpoint(
        b, width, round_up=False
    )


@given(BYTES, WIDTHS)
@settings(max_examples=200, deadline=None)
def test_endpoint_round_up_dominates_round_down(key, width):
    assert encode_endpoint(key, width, round_up=True) >= encode_endpoint(
        key, width, round_up=False
    )


@given(BYTES, WIDTHS, WIDTHS)
@settings(max_examples=200, deadline=None)
def test_endpoint_truncation_monotonicity_across_widths(key, w1, w2):
    """Shrinking the width only widens the covered block.

    Scaling the narrow encoding up to the wide key space (low endpoint
    zero-padded, high endpoint one-padded) must bracket the wide
    encoding: ``[lo_w1, hi_w1] ⊇ [lo_w2, hi_w2]`` after scaling. This is
    the conservativeness of truncation stated as interval containment."""
    if w1 > w2:
        w1, w2 = w2, w1
    shift = 8 * (w2 - w1)
    lo_narrow = encode_endpoint(key, w1, round_up=False) << shift
    hi_narrow = (encode_endpoint(key, w1, round_up=True) << shift) | (
        (1 << shift) - 1
    )
    assert lo_narrow <= encode_endpoint(key, w2, round_up=False)
    assert hi_narrow >= encode_endpoint(key, w2, round_up=True)


@given(BYTES, WIDTHS)
@settings(max_examples=200, deadline=None)
def test_endpoint_always_inside_universe(key, width):
    """No endpoint may ever leave the key universe — the overflow
    regression: an over-width endpoint whose truncation is all ``0xFF``
    must saturate, not increment out of range."""
    universe = 1 << (8 * width)
    for round_up in (False, True):
        assert 0 <= encode_endpoint(key, width, round_up=round_up) < universe


@given(st.lists(CANONICAL, min_size=1, max_size=16), BYTES, BYTES, st.data())
@settings(max_examples=100, deadline=None)
def test_string_grafite_never_false_negative(keys, lo, hi, data):
    """Any stored key plain-byte-inside ``[lo, hi]`` must be reported,
    whatever the endpoint lengths (truncation only widens)."""
    width = data.draw(st.integers(1, 4))
    keys = sorted({k[:width].rstrip(b"\x00") for k in keys})
    if lo > hi:
        lo, hi = hi, lo
    f = StringGrafite(keys, max_key_bytes=width, eps=0.3, seed=7)
    if any(lo <= k <= hi for k in keys):
        assert f.may_contain_range(lo, hi)
    for k in keys:
        assert f.may_contain(k)


# ----------------------------------------------------------------------
# Satellite 1 regression: round-up overflow at the top of the universe
# ----------------------------------------------------------------------
class TestEndpointOverflowRegression:
    def test_all_ff_truncation_saturates(self):
        """Rounding up an over-width endpoint whose truncation is all
        ``0xFF`` would overflow the width; it must saturate instead."""
        assert encode_endpoint(b"\xff" * 4, 3, round_up=True) == 2**24 - 1
        assert encode_endpoint(b"\xff" * 9, 8, round_up=True) == 2**64 - 1

    def test_non_saturating_truncation_rounds_up_by_one(self):
        """The honest round-up: an over-width high endpoint admits the
        whole storable block of its truncation, i.e. truncation + 1."""
        assert (
            encode_endpoint(b"ab\x7f-tail", 3, round_up=True)
            == encode_string(b"ab\x7f", 3) + 1
        )

    def test_prefix_query_at_universe_top_is_safe_and_positive(self):
        """The regression scenario: a prefix/range probe whose rounded-up
        endpoint overflows the key width. Must not crash, must not
        raise, and must still find the stored all-``0xFF`` key."""
        f = StringGrafite([b"\xff\xff\xff", b"abc"], max_key_bytes=3, eps=0.01, seed=1)
        assert f.may_contain(b"\xff\xff\xff")
        # Over-width endpoints on both sides of the stored key.
        assert f.may_contain_range(b"\xff\xff\xfe\x01", b"\xff" * 6)
        assert isinstance(f.may_contain_prefix(b"\xff" * 5), bool)
        # Inclusive-of-extensions semantics at the top of the universe.
        assert f.may_contain_range(b"\xff\xff\xff", b"\xff\xff\xff\x00\x01")

    def test_codec_collapses_range_above_universe_top(self):
        """The exact codec's view of the same corner: a low endpoint
        strictly above every storable key collapses the range."""
        codec = StringKeyCodec(width=3)
        assert codec.encode_range(b"\xff" * 4, b"\xff" * 5) is None
        assert codec.encode_range(b"\xff" * 3, b"\xff" * 5) == (
            2**24 - 1, 2**24 - 1
        )
        assert codec.encode_prefix(b"\xff" * 4) is None

    def test_inverted_range_still_rejected(self):
        f = StringGrafite([b"m"], max_key_bytes=2, eps=0.1, seed=0)
        with pytest.raises(InvalidQueryError):
            f.may_contain_range(b"z", b"a")


# ----------------------------------------------------------------------
# StringKeyCodec: exactness against brute force
# ----------------------------------------------------------------------
@given(st.lists(CANONICAL, min_size=0, max_size=16), BYTES, BYTES, st.data())
@settings(max_examples=150, deadline=None)
def test_codec_range_image_is_exact(keys, lo, hi, data):
    """A storable key is inside the encoded integer range iff it is
    inside the string range — both directions, any endpoint length."""
    width = data.draw(st.integers(1, 4))
    codec = StringKeyCodec(width=width)
    keys = sorted({k[:width].rstrip(b"\x00") for k in keys})
    if lo > hi:
        lo, hi = hi, lo
    image = codec.encode_range(lo, hi)
    for k in keys:
        inside = lo <= k <= hi
        mapped = image is not None and image[0] <= codec.encode_key(k) <= image[1]
        assert mapped == inside, (
            f"codec image {image} disagrees with bytes order for "
            f"key={k!r} in [{lo!r}, {hi!r}] at width {width}"
        )


@given(st.lists(CANONICAL, min_size=0, max_size=16), CANONICAL, st.data())
@settings(max_examples=150, deadline=None)
def test_codec_prefix_image_is_exact(keys, prefix, data):
    width = data.draw(st.integers(1, 4))
    codec = StringKeyCodec(width=width)
    keys = sorted({k[:width].rstrip(b"\x00") for k in keys})
    image = codec.encode_prefix(prefix)
    for k in keys:
        inside = k.startswith(prefix) or (
            # identification of a key with itself plus trailing NULs
            prefix.startswith(k) and prefix[len(k):].strip(b"\x00") == b""
        )
        mapped = image is not None and image[0] <= codec.encode_key(k) <= image[1]
        assert mapped == inside, (
            f"prefix image {image} disagrees for key={k!r}, "
            f"prefix={prefix!r} at width {width}"
        )


@given(BYTES, BYTES, WIDTHS)
@settings(max_examples=100, deadline=None)
def test_codec_inverted_ranges_raise(a, b, width):
    codec = StringKeyCodec(width=width)
    if a == b:
        return
    lo, hi = (a, b) if a < b else (b, a)
    with pytest.raises(InvalidQueryError):
        codec.encode_range(hi, lo)
