"""Tests for the batch query planner (rewrite, negative cache, cost model).

The planner's contract is exactness: every pass — dedup scatter-back,
cover merging with the re-ask round, negative-cache replay under the
version/memtable validity conditions — must leave the verdict column
bit-identical to the unplanned executor. The suites here check the
passes in isolation (plan_batch / NegativeRangeCache / CostModel units)
and end to end (hypothesis equivalence against a planner-less twin
engine, cache invalidation through real flushes and writes).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grafite import Grafite
from repro.engine import (
    BatchPlanner,
    CostModel,
    NegativeRangeCache,
    RangeQueryService,
    ShardedEngine,
    plan_batch,
)
from repro.engine.planner import _merge_intervals, duplicate_ratio

UNIVERSE = 2**24
U64_MAX = 2**64 - 1


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=10, max_range_size=64, seed=5)


def build_engine(keys, *, num_shards=4, universe=UNIVERSE, planner=None):
    engine = ShardedEngine(
        universe, num_shards=num_shards, memtable_limit=64,
        filter_factory=grafite_factory,
    )
    for k in keys:
        engine.put(int(k), "v")
    engine.flush_all()
    if planner is not None:
        engine.attach_planner(planner)
    return engine


def u64(values):
    return np.asarray(values, dtype=np.uint64)


# ----------------------------------------------------------------------
# The rewrite pass
# ----------------------------------------------------------------------
class TestPlanBatch:
    def test_dedup_and_inverse_scatter(self):
        los = u64([10, 5, 10, 5, 300])
        his = u64([20, 8, 20, 8, 301])
        plan = plan_batch(los, his)
        assert plan.n_queries == 5 and plan.n_unique == 3
        np.testing.assert_array_equal(plan.uniq_lo, [5, 10, 300])
        np.testing.assert_array_equal(plan.uniq_hi, [8, 20, 301])
        # Scattering unique verdicts back lands them at original slots.
        verdicts = np.array([True, False, True])
        np.testing.assert_array_equal(
            verdicts[plan.inverse], [False, True, False, True, True]
        )
        assert plan.duplicate_ratio == pytest.approx(2 / 5)

    def test_overlapping_and_adjacent_ranges_merge(self):
        #  [0,10] overlaps [5,20]; [21,30] is adjacent to their cover;
        #  [100,110] stands alone.
        plan = plan_batch(u64([0, 5, 21, 100]), u64([10, 20, 30, 110]))
        assert plan.n_covers == 2
        np.testing.assert_array_equal(plan.cover_lo, [0, 100])
        np.testing.assert_array_equal(plan.cover_hi, [30, 110])
        np.testing.assert_array_equal(plan.cover_of, [0, 0, 0, 1])

    def test_contained_range_folds_into_cover(self):
        plan = plan_batch(u64([0, 3]), u64([100, 7]))
        assert plan.n_covers == 1
        np.testing.assert_array_equal(plan.cover_lo, [0])
        np.testing.assert_array_equal(plan.cover_hi, [100])

    def test_uint64_top_edge(self):
        # Bounds hugging 2**64 - 1 must not overflow the adjacency test.
        plan = plan_batch(
            u64([U64_MAX - 10, U64_MAX - 4, 0]),
            u64([U64_MAX - 5, U64_MAX, 1]),
        )
        assert plan.n_covers == 2
        np.testing.assert_array_equal(plan.cover_lo, [0, U64_MAX - 10])
        np.testing.assert_array_equal(plan.cover_hi, [1, U64_MAX])

    def test_disjoint_ranges_stay_separate(self):
        # A gap of exactly 2 must NOT merge ([0,5] and [8,10]).
        plan = plan_batch(u64([0, 8]), u64([5, 10]))
        assert plan.n_covers == 2

    def test_empty_batch(self):
        plan = plan_batch(u64([]), u64([]))
        assert plan.n_queries == 0 and plan.n_unique == 0
        assert plan.n_covers == 0 and plan.duplicate_ratio == 0.0

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 50)),
            min_size=0, max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_structure_invariants(self, pairs):
        los = u64([lo for lo, _ in pairs])
        his = u64([lo + w for lo, w in pairs])
        plan = plan_batch(los, his)
        # Uniques are lexsorted and distinct.
        if plan.n_unique > 1:
            key = plan.uniq_lo.astype(object) * 10**6 + plan.uniq_hi
            assert bool((key[1:] > key[:-1]).all())
        # The inverse map reproduces the original columns exactly.
        np.testing.assert_array_equal(plan.uniq_lo[plan.inverse], los)
        np.testing.assert_array_equal(plan.uniq_hi[plan.inverse], his)
        # Covers are sorted, disjoint, non-adjacent, and contain their
        # members.
        if plan.n_covers > 1:
            assert bool(
                (plan.cover_lo[1:].astype(object)
                 - plan.cover_hi[:-1].astype(object) > 1).all()
            )
        assert bool((plan.cover_lo[plan.cover_of] <= plan.uniq_lo).all())
        assert bool((plan.cover_hi[plan.cover_of] >= plan.uniq_hi).all())


class TestMergeIntervals:
    def test_merges_and_sorts(self):
        los, his = _merge_intervals(u64([50, 0, 10, 30]), u64([60, 12, 20, 49]))
        np.testing.assert_array_equal(los, [0, 30])
        np.testing.assert_array_equal(his, [20, 60])

    def test_empty(self):
        los, his = _merge_intervals(u64([]), u64([]))
        assert los.size == 0 and his.size == 0


class TestDuplicateRatio:
    def test_values(self):
        assert duplicate_ratio(u64([]), u64([])) == 0.0
        assert duplicate_ratio(u64([1]), u64([2])) == 0.0
        assert duplicate_ratio(u64([1, 1]), u64([2, 2])) == pytest.approx(0.5)
        assert duplicate_ratio(u64([1, 2]), u64([2, 3])) == 0.0


# ----------------------------------------------------------------------
# The negative cache
# ----------------------------------------------------------------------
class TestNegativeRangeCache:
    def test_containment_lookup(self):
        cache = NegativeRangeCache()
        cache.record(0, 7, u64([100]), u64([200]))
        hits = cache.lookup(0, 7, u64([150, 100, 90, 150]),
                            u64([160, 200, 95, 201]))
        # Contained and exact ranges hit; outside / overhanging miss.
        np.testing.assert_array_equal(hits, [True, True, False, False])
        assert cache.hits == 2 and cache.misses == 2
        assert cache.hit_rate == pytest.approx(0.5)

    def test_version_mismatch_never_hits(self):
        cache = NegativeRangeCache()
        cache.record(0, 7, u64([100]), u64([200]))
        assert not cache.lookup(0, 8, u64([150]), u64([160])).any()
        assert not cache.lookup(1, 7, u64([150]), u64([160])).any()

    def test_version_monotone_record(self):
        cache = NegativeRangeCache()
        cache.record(0, 7, u64([100]), u64([200]))
        # Older proof: dropped.
        cache.record(0, 6, u64([300]), u64([400]))
        assert not cache.lookup(0, 6, u64([300]), u64([400])).any()
        assert not cache.lookup(0, 7, u64([300]), u64([400])).any()
        # Newer proof: replaces wholesale and counts an invalidation.
        cache.record(0, 9, u64([500]), u64([600]))
        assert cache.invalidations == 1
        assert not cache.lookup(0, 9, u64([150]), u64([160])).any()
        assert cache.lookup(0, 9, u64([550]), u64([560])).all()

    def test_same_version_records_merge(self):
        cache = NegativeRangeCache()
        cache.record(0, 3, u64([0, 20]), u64([10, 30]))
        cache.record(0, 3, u64([11]), u64([19]))  # bridges the gap
        assert cache.n_intervals == 1
        assert cache.lookup(0, 3, u64([5]), u64([25])).all()

    def test_capacity_trim_keeps_widest(self):
        cache = NegativeRangeCache(capacity=2)
        # Three disjoint, non-adjacent intervals of widths 100, 2, 50.
        cache.record(0, 1, u64([0, 200, 400]), u64([100, 202, 450]))
        assert cache.n_intervals == 2
        assert cache.lookup(0, 1, u64([50]), u64([60])).all()    # width 100
        assert cache.lookup(0, 1, u64([410]), u64([420])).all()  # width 50
        assert not cache.lookup(0, 1, u64([201]), u64([201])).any()

    def test_zero_capacity_disables_recording(self):
        cache = NegativeRangeCache(capacity=0)
        cache.record(0, 1, u64([0]), u64([10]))
        assert cache.n_intervals == 0

    def test_drop_shard_and_clear(self):
        cache = NegativeRangeCache()
        cache.record(0, 1, u64([0]), u64([10]))
        cache.record(1, 1, u64([0]), u64([10]))
        cache.drop_shard(0)
        assert cache.invalidations == 1
        assert not cache.lookup(0, 1, u64([5]), u64([6])).any()
        assert cache.lookup(1, 1, u64([5]), u64([6])).all()
        cache.clear()
        assert cache.n_intervals == 0


# ----------------------------------------------------------------------
# The cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_tiny_batches_go_scalar(self):
        model = CostModel()
        assert model.choose(batch_size=3) == "scalar"
        assert model.choose(batch_size=8) == "scalar"

    def test_duplicates_discount_the_size(self):
        model = CostModel()
        # 100 rows but 95% duplicates: 5 distinct -> scalar territory.
        assert model.choose(batch_size=100, duplicate_ratio=0.95) == "scalar"
        assert model.choose(batch_size=100, duplicate_ratio=0.0,
                            process_available=True) == "process"

    def test_process_needs_availability_size_and_clean_memtables(self):
        model = CostModel()
        assert model.choose(batch_size=500) == "columnar"
        assert model.choose(
            batch_size=500, process_available=True
        ) == "process"
        assert model.choose(
            batch_size=500, process_available=True, memtable_overlap=0.9
        ) == "columnar"
        assert model.choose(
            batch_size=32, process_available=True
        ) == "columnar"


# ----------------------------------------------------------------------
# End-to-end equivalence and cache invalidation
# ----------------------------------------------------------------------
def duplicate_heavy_batches():
    """Batches built from a small pool of ranges, sampled with heavy
    repetition — the planner's target shape."""
    pool = st.lists(
        st.tuples(st.integers(0, UNIVERSE - 1), st.integers(0, 4096)),
        min_size=1, max_size=12,
    )
    return pool.flatmap(
        lambda p: st.lists(
            st.sampled_from(p), min_size=0, max_size=64
        )
    )


@pytest.mark.parametrize(
    "planner_kwargs",
    [
        {},  # full pipeline
        {"merge": False},  # dedup only
        {"cache_capacity": 0},  # no negative cache
        {"merge": False, "cache_capacity": 0},  # bare dedup
    ],
    ids=["full", "no-merge", "no-cache", "dedup-only"],
)
@given(batch=duplicate_heavy_batches(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_planned_equals_unplanned(planner_kwargs, batch, data):
    """Every planner variant must be bit-identical to the raw engine."""
    n_keys = data.draw(st.sampled_from([0, 50, 400]))
    num_shards = data.draw(st.sampled_from([1, 4]))
    keys = np.unique(
        np.random.default_rng(n_keys + num_shards).integers(
            0, UNIVERSE, n_keys, dtype=np.uint64
        )
    )
    plain = build_engine(keys, num_shards=num_shards)
    planned = build_engine(
        keys, num_shards=num_shards, planner=BatchPlanner(**planner_kwargs)
    )
    los = u64([lo for lo, _ in batch])
    his = u64([min(lo + w, UNIVERSE - 1) for lo, w in batch])
    want = plain.batch_range_empty(los, his)
    # Twice: the second round replays negative-cache entries.
    for _ in range(2):
        np.testing.assert_array_equal(
            planned.batch_range_empty(los, his), want
        )


class TestPlannerEngineIntegration:
    def test_second_batch_hits_negative_cache(self):
        planner = BatchPlanner()
        engine = build_engine([5, 10_000], planner=planner)
        los = u64([100, 200, 100])
        his = u64([150, 250, 150])
        assert engine.batch_range_empty(los, his).all()
        before = planner.cache.hits
        assert engine.batch_range_empty(los, his).all()
        assert planner.cache.hits > before
        snap = planner.stats_snapshot()
        assert snap["negative_cache"]["hits"] == planner.cache.hits
        assert snap["duplicates_folded"] >= 2

    def test_memtable_write_disqualifies_cached_empty(self):
        planner = BatchPlanner()
        engine = build_engine([5], planner=planner)
        assert engine.batch_range_empty(u64([100]), u64([200])).all()
        assert engine.batch_range_empty(u64([100]), u64([200])).all()
        # An unflushed write inside the cached range must flip the
        # verdict immediately — no version bump happens on put().
        engine.put(150, "x")
        assert not engine.batch_range_empty(u64([100]), u64([200])).any()
        # ... and a tombstone is an overlap too (shadowing semantics
        # are the executor's business, not the cache's).
        engine.delete(150)
        verdict = engine.batch_range_empty(u64([100]), u64([200]))
        np.testing.assert_array_equal(
            verdict, [engine.range_empty(100, 200)]
        )

    def test_flush_evicts_via_version_bump(self):
        planner = BatchPlanner()
        engine = build_engine([5], planner=planner)
        assert engine.batch_range_empty(u64([100]), u64([200])).all()
        engine.put(150, "x")
        engine.flush_all()  # runs_version bump: entry tagged stale
        assert not engine.batch_range_empty(u64([100]), u64([200])).any()
        # Delete + flush makes the range empty again; the new proof is
        # recorded at the new version and replays.
        engine.delete(150)
        engine.flush_all()
        assert engine.batch_range_empty(u64([100]), u64([200])).all()
        hits_before = planner.cache.hits
        assert engine.batch_range_empty(u64([100]), u64([200])).all()
        assert planner.cache.hits > hits_before

    def test_covering_merge_reask_round(self):
        planner = BatchPlanner()
        engine = build_engine([150], planner=planner)
        # [100,160] and [155,300] merge into cover [100,300], which is
        # non-empty (key 150) — proving nothing about the members, so
        # the re-ask round answers them individually: [100,160] holds
        # the key, [155,300] and the separately-covered [400,500] do not.
        verdict = engine.batch_range_empty(
            u64([100, 155, 400]), u64([160, 300, 500])
        )
        np.testing.assert_array_equal(verdict, [False, True, True])
        assert planner.stats_snapshot()["reasked_members"] > 0

    def test_attach_different_engine_clears_cache(self):
        planner = BatchPlanner()
        engine_a = build_engine([5], planner=planner)
        assert engine_a.batch_range_empty(u64([100]), u64([200])).all()
        assert planner.cache.n_intervals > 0
        build_engine([7], planner=planner)
        # Re-homing the planner dropped every interval proven against
        # the old engine's runs_versions.
        assert planner.cache.n_intervals == 0

    def test_detach_restores_unplanned_path(self):
        planner = BatchPlanner()
        engine = build_engine([5], planner=planner)
        engine.batch_range_empty(u64([100]), u64([200]))
        batches = planner.stats_snapshot()["batches"]
        engine.attach_planner(None)
        assert engine.planner is None
        engine.batch_range_empty(u64([100]), u64([200]))
        assert planner.stats_snapshot()["batches"] == batches


class TestPlannerServiceIntegration:
    def test_service_snapshot_carries_planner_section(self):
        engine = build_engine([5, 10_000], num_shards=2)
        engine.attach_planner(BatchPlanner())
        with RangeQueryService(engine, num_threads=2) as service:
            service.batch_range_empty(
                u64([100, 100, 5000]), u64([200, 200, 6000])
            )
            snap = service.stats_snapshot()
        planner = snap["planner"]
        assert planner is not None
        assert planner["queries"] == 3
        assert planner["negative_cache"]["enabled"]
        # The cost model tallied the per-shard dispatch decisions.
        assert sum(planner["modes"].values()) > 0

    def test_service_without_planner_reports_none(self):
        engine = build_engine([5], num_shards=2)
        with RangeQueryService(engine, num_threads=2) as service:
            service.batch_range_empty(u64([100]), u64([200]))
            assert service.stats_snapshot()["planner"] is None

    def test_service_planned_equals_unplanned(self):
        rng = np.random.default_rng(11)
        keys = np.unique(rng.integers(0, UNIVERSE, 500, dtype=np.uint64))
        los = rng.integers(0, UNIVERSE - 5000, 300, dtype=np.uint64)
        his = los + rng.integers(0, 4096, 300, dtype=np.uint64)
        los = np.repeat(los, 3)  # duplicate-heavy, like coalesced traffic
        his = np.repeat(his, 3)
        plain_engine = build_engine(keys, num_shards=2)
        with RangeQueryService(plain_engine, num_threads=2) as plain:
            want = plain.batch_range_empty(los, his)
        planned_engine = build_engine(
            keys, num_shards=2, planner=BatchPlanner()
        )
        with RangeQueryService(planned_engine, num_threads=2) as planned:
            for _ in range(2):  # second pass replays the negative cache
                np.testing.assert_array_equal(
                    planned.batch_range_empty(los, his), want
                )
