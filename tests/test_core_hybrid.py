"""Tests for the §7 Bucketing+Grafite hybrid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fpr import measure_fpr
from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.core.hybrid import HybridGrafiteBucketing
from repro.errors import InvalidParameterError, InvalidQueryError
from repro.workloads.datasets import uniform
from repro.workloads.queries import correlated_queries, uncorrelated_queries

UNIVERSE = 2**40
KEYS = uniform(5000, universe=UNIVERSE, seed=0)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HybridGrafiteBucketing(KEYS, UNIVERSE, bits_per_key=1)
        with pytest.raises(InvalidParameterError):
            HybridGrafiteBucketing(KEYS, UNIVERSE, bits_per_key=16, bucketing_share=0)

    def test_empty_keys(self):
        f = HybridGrafiteBucketing([], UNIVERSE, bits_per_key=10)
        assert f.key_count == 0
        assert not f.may_contain_range(0, 100)

    def test_budget_split(self):
        f = HybridGrafiteBucketing(
            KEYS, UNIVERSE, bits_per_key=16, bucketing_share=0.25, seed=1
        )
        bucketing, grafite = f.stages
        assert bucketing.size_in_bits < grafite.size_in_bits
        assert f.size_in_bits == bucketing.size_in_bits + grafite.size_in_bits
        assert f.bits_per_key <= 16 * 1.2

    def test_bound_comes_from_grafite(self):
        f = HybridGrafiteBucketing(KEYS, UNIVERSE, bits_per_key=16, seed=1)
        assert f.fpr_bound(32) == f.stages[1].fpr_bound(32)


class TestBehaviour:
    def test_query_validation(self):
        f = HybridGrafiteBucketing(KEYS, UNIVERSE, bits_per_key=12, seed=0)
        with pytest.raises(InvalidQueryError):
            f.may_contain_range(9, 3)

    def test_no_false_negatives(self):
        f = HybridGrafiteBucketing(KEYS, UNIVERSE, bits_per_key=12, seed=2)
        for k in KEYS[:300]:
            k = int(k)
            assert f.may_contain(k)
            assert f.may_contain_range(max(0, k - 7), min(UNIVERSE - 1, k + 7))

    def test_fpr_at_most_each_stage(self):
        budget = 14
        hybrid = HybridGrafiteBucketing(KEYS, UNIVERSE, bits_per_key=budget, seed=3)
        queries = uncorrelated_queries(1500, 32, UNIVERSE, keys=KEYS, seed=4)
        fpr_hybrid = measure_fpr(hybrid, queries).fpr
        for stage in hybrid.stages:
            assert fpr_hybrid <= measure_fpr(stage, queries).fpr + 1e-9

    def test_robust_under_correlation(self):
        """The Grafite stage keeps the hybrid safe where Bucketing dies."""
        budget = 16
        hybrid = HybridGrafiteBucketing(
            KEYS, UNIVERSE, bits_per_key=budget, max_range_size=16, seed=5
        )
        plain_bucketing = Bucketing(KEYS, UNIVERSE, bits_per_key=budget)
        queries = correlated_queries(
            KEYS, 800, 16, UNIVERSE, correlation_degree=1.0, seed=6
        )
        assert measure_fpr(plain_bucketing, queries).fpr > 0.8
        assert measure_fpr(hybrid, queries).fpr <= hybrid.fpr_bound(16) * 3 + 0.01

    def test_clustered_data_beats_pure_grafite(self):
        """The point of combining (§7): on clustered data Bucketing is
        data-adaptive (t << n), so a cheap Bucketing stage undercuts a
        pure Grafite of the same total budget. (On uniform data the
        stages' additive constants dominate and pure Grafite wins — the
        hybrid is a data-dependent optimisation, not a free lunch.)"""
        from repro.workloads.datasets import books_like

        clustered = books_like(5000, universe=UNIVERSE, seed=0)
        budget = 9
        hybrid = HybridGrafiteBucketing(
            clustered, UNIVERSE, bits_per_key=budget, max_range_size=64,
            bucketing_share=0.3, seed=7,
        )
        pure = Grafite(clustered, UNIVERSE, bits_per_key=budget, max_range_size=64, seed=7)
        queries = uncorrelated_queries(2000, 64, UNIVERSE, keys=clustered, seed=8)
        fpr_hybrid = measure_fpr(hybrid, queries).fpr
        fpr_pure = measure_fpr(pure, queries).fpr
        assert fpr_hybrid < fpr_pure
        assert hybrid.bits_per_key <= pure.bits_per_key + 0.5

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_property(self, data):
        keys = data.draw(
            st.lists(st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=50)
        )
        f = HybridGrafiteBucketing(
            keys, UNIVERSE,
            bits_per_key=data.draw(st.sampled_from([6, 12, 20])),
            bucketing_share=data.draw(st.sampled_from([0.1, 0.25, 0.5])),
            seed=data.draw(st.integers(0, 30)),
        )
        for key in keys[:10]:
            width = data.draw(st.integers(min_value=0, max_value=30))
            lo = max(0, key - width)
            hi = min(UNIVERSE - 1, key + width)
            assert f.may_contain_range(lo, hi)
