"""Tests for the Golomb-Rice coded sequence (SNARF's compressed bit array)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.succinct.golomb import BitReader, BitWriter, GolombSequence


class TestBitIO:
    def test_round_trip_mixed_widths(self):
        w = BitWriter()
        payload = [(0b101, 3), (0xFFFF, 16), (1, 1), (0, 5), (0xDEADBEEF, 32)]
        for value, bits in payload:
            w.write_bits(value, bits)
        r = BitReader(w.to_words())
        for value, bits in payload:
            assert r.read_bits(bits) == value

    def test_unary_round_trip(self):
        w = BitWriter()
        values = [0, 1, 5, 63, 64, 200]
        for v in values:
            w.write_unary(v)
        r = BitReader(w.to_words())
        for v in values:
            assert r.read_unary() == v

    def test_word_boundary_crossing(self):
        w = BitWriter()
        w.write_bits(0, 60)
        w.write_bits(0b1011, 4)  # ends exactly at 64
        w.write_bits(0x1FF, 9)  # crosses into word 2
        r = BitReader(w.to_words())
        r.read_bits(60)
        assert r.read_bits(4) == 0b1011
        assert r.read_bits(9) == 0x1FF

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            BitWriter().write_bits(1, -1)


class TestGolombSequence:
    def test_empty(self):
        seq = GolombSequence([], universe=100)
        assert len(seq) == 0
        assert seq.successor(0) is None
        assert not seq.any_in_range(0, 99)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GolombSequence([5, 5], universe=10)  # not strictly increasing
        with pytest.raises(InvalidParameterError):
            GolombSequence([10], universe=10)  # out of universe
        with pytest.raises(InvalidParameterError):
            GolombSequence([], universe=0)

    def test_iteration_round_trip(self):
        positions = [0, 5, 6, 100, 2**20]
        seq = GolombSequence(positions, universe=2**21)
        assert list(seq) == positions

    def test_successor_basics(self):
        seq = GolombSequence([10, 20, 30], universe=100)
        assert seq.successor(0) == 10
        assert seq.successor(10) == 10
        assert seq.successor(11) == 20
        assert seq.successor(31) is None

    def test_any_in_range(self):
        seq = GolombSequence([50], universe=100)
        assert seq.any_in_range(0, 99)
        assert seq.any_in_range(50, 50)
        assert not seq.any_in_range(0, 49)
        assert not seq.any_in_range(51, 99)
        assert not seq.any_in_range(60, 40)

    def test_block_boundaries(self):
        # stride 4 forces multiple directory blocks
        positions = list(range(0, 400, 7))
        seq = GolombSequence(positions, universe=500, sample_every=4)
        for y in range(0, 420, 3):
            expected = next((p for p in positions if p >= y), None)
            assert seq.successor(y) == expected

    def test_compression_effective(self):
        # Dense-ish positions should compress far below 64 bits each.
        positions = list(range(0, 100_000, 13))
        seq = GolombSequence(positions, universe=100_000)
        assert seq.size_in_bits < len(positions) * 16

    @given(
        st.sets(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_successor_matches_reference(self, raw, data):
        positions = sorted(raw)
        seq = GolombSequence(positions, universe=10**6 + 1, sample_every=8)
        probes = data.draw(
            st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=20)
        )
        probes += positions[:5]
        for y in probes:
            expected = next((p for p in positions if p >= y), None)
            assert seq.successor(y) == expected
