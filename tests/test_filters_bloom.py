"""Tests for the Bloom filter substrate and its derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.filters.bloom import (
    BloomFilter,
    bits_for_fpr,
    optimal_num_hashes,
    splitmix64,
    splitmix64_array,
)


class TestSplitmix:
    def test_scalar_matches_array(self):
        xs = np.array([0, 1, 2**63, 2**64 - 1, 123456789], dtype=np.uint64)
        assert splitmix64_array(xs).tolist() == [splitmix64(int(x)) for x in xs]

    def test_is_64_bit(self):
        assert 0 <= splitmix64(2**64 - 1) < 2**64

    def test_distinct_inputs_spread(self):
        outputs = {splitmix64(i) for i in range(1000)}
        assert len(outputs) == 1000


class TestSizing:
    def test_optimal_num_hashes(self):
        assert optimal_num_hashes(1000, 100) == 7  # 10 ln 2 ~ 6.93
        assert optimal_num_hashes(10, 1000) == 1
        assert optimal_num_hashes(10**9, 1) == 16  # clipped

    def test_bits_for_fpr(self):
        n = 1000
        assert bits_for_fpr(n, 0.01) == pytest.approx(9.585 * n, rel=0.01)
        with pytest.raises(InvalidParameterError):
            bits_for_fpr(n, 0.0)
        with pytest.raises(InvalidParameterError):
            bits_for_fpr(n, 1.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        items = list(range(0, 100_000, 97))
        bf = BloomFilter(20_000, items=items, seed=1)
        for item in items:
            assert bf.may_contain(item)

    def test_add_incremental(self):
        bf = BloomFilter(1024, num_hashes=3, seed=0)
        assert not bf.may_contain(42)
        bf.add(42)
        assert bf.may_contain(42)
        assert bf.item_count == 1

    def test_add_many_matches_scalar_adds(self):
        items = [5, 77, 123456, 2**63]
        a = BloomFilter(4096, num_hashes=4, seed=9)
        b = BloomFilter(4096, num_hashes=4, seed=9)
        a.add_many(items)
        for item in items:
            b.add(item)
        assert a._bits.words.tolist() == b._bits.words.tolist()

    def test_from_fpr_hits_target(self):
        rng = np.random.default_rng(3)
        items = np.unique(rng.integers(0, 2**62, 5000, dtype=np.uint64))
        target = 0.02
        bf = BloomFilter.from_fpr(items, target, seed=5)
        item_set = set(int(x) for x in items)
        trials = 20_000
        fp = sum(
            1
            for x in rng.integers(0, 2**62, trials, dtype=np.uint64)
            if int(x) not in item_set and bf.may_contain(int(x))
        )
        assert fp / trials < target * 2.5

    def test_expected_fpr_formula(self):
        bf = BloomFilter(1000, num_hashes=7, seed=0)
        assert bf.expected_fpr() == 0.0
        bf.add_many(list(range(100)))
        assert 0 < bf.expected_fpr() < 1

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            BloomFilter(0)
        with pytest.raises(InvalidParameterError):
            BloomFilter(100, num_hashes=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=200),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives_property(self, items, seed):
        bf = BloomFilter(4096, items=items, seed=seed)
        for item in items:
            assert bf.may_contain(item)
