"""Multi-process scaling + columnar-router regression bench.

Answers the two questions ISSUE 3 opened, and stands guard over both
answers as a perf-regression harness:

* **columnar vs. tuple fan-out** — the PR 2 batch path was "vectorised"
  yet still executed per-query python at two points: one interpreted
  big-int hash evaluation per *distinct query block* inside Grafite's
  batch probe (``np.fromiter`` over ``hash_block``) and a per-query
  python scan of the memtable. The frozen reference implementation of
  that path lives in this file (``_legacy_*``); the acceptance bar is
  the columnar pipeline beating it by >= 1.5x on the big cross-shard
  batch, so a silently re-introduced per-query loop fails CI;
* **process vs. thread serving** — on a CPU-bound batch the thread pool
  serialises on the GIL; ``mode="process"`` routes the same chunks to
  per-shard snapshot workers through shared-memory rings. The bar is
  >= 2x over thread mode at 4 workers — asserted only where the host
  actually has >= 4 CPUs (the comparison is meaningless on fewer), and
  always recorded in the JSON artifact either way.

Every cell lands in ``BENCH_mp_scaling.json`` (op/s, p50/p99, config,
git sha) next to the human-readable table, seeding the machine-readable
perf trajectory. The popcount micro-kernel (``np.bitwise_count`` vs.
the byte-table walk) is measured into the same artifact.
"""

from __future__ import annotations

import functools
import os
import tempfile
from typing import Dict, List, Tuple

import numpy as np
import pytest

import _common
from _common import (
    SEED, UNIVERSE, merge_bench_json, register_report, timing_stats,
    write_bench_json,
)
from repro.analysis.report import format_table
from repro.core.grafite import Grafite
from repro.engine import RangeQueryService, ShardedEngine
from repro.engine.batch import validate_batch_bounds
from repro.succinct.bitvector import (
    HAS_BITWISE_COUNT,
    _popcount_words_table,
    popcount_words,
)
from repro.workloads.datasets import uniform
from repro.workloads.queries import uncorrelated_queries

N_KEYS = max(5_000, int(120_000 * _common.SCALE))
BIG_BATCH = max(2_000, int(100_000 * _common.SCALE))
WORKER_COUNTS = (1, 2, 4)
NUM_SHARDS = 4
RANGE = 32
BITS_PER_KEY = 16
#: Floors enforced by the CI perf-smoke step.
COLUMNAR_FLOOR = 1.5
PROCESS_FLOOR = 2.0

# ISSUE 10: shared-memory block cache vs. duplicated per-worker caches.
CACHE_WORKERS = 4
CACHE_BATCH = max(1_000, int(8_000 * _common.SCALE))
#: Fraction of probes aimed at the one hot shard — the skew that makes
#: cache *placement* matter: one worker owns nearly all the traffic.
HOT_FRACTION = 0.9
#: Simulated storage-device read latency per block-cache miss.
CACHE_MISS_LATENCY = 0.0002
SHARED_CACHE_FLOOR = 1.3

_TMP = tempfile.TemporaryDirectory(prefix="repro-mp-bench-")


def _factory(keys, universe):
    return Grafite(
        keys, universe, bits_per_key=BITS_PER_KEY, max_range_size=RANGE, seed=SEED
    )


@functools.lru_cache(maxsize=None)
def build_engine() -> ShardedEngine:
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=NUM_SHARDS,
        memtable_limit=max(512, N_KEYS // 8),
        compaction_fanout=4,
        filter_factory=_factory,
        directory=os.path.join(_TMP.name, "db"),
    )
    arrival = keys[np.random.default_rng(SEED + 1).permutation(keys.size)]
    for key in arrival:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return engine


@functools.lru_cache(maxsize=None)
def probe_bounds(batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """A CPU-bound cross-shard batch: uncorrelated, overwhelmingly empty,
    so the cost is filter kernels — not verification I/O."""
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    queries = uncorrelated_queries(
        batch_size, RANGE, UNIVERSE, keys=keys, seed=SEED + 2
    )
    los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
    his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
    return los, his


# ----------------------------------------------------------------------
# Frozen PR 2 reference ("tuple fan-out") — DO NOT MODERNISE.
# ----------------------------------------------------------------------
# This replicates the pre-columnar hot path byte for byte where it
# matters: the dict-of-tuples shard routing, the per-distinct-block
# python hash evaluation, the decode-plus-searchsorted Elias-Fano
# probe, and the per-query python memtable scan. It exists so the
# columnar pipeline has a pinned baseline to beat; edits here would
# silently move the bar — which is also why it does NOT call the live
# router (a regression there would slow baseline and candidate alike
# and hide from the floor).
def _legacy_route_single_shard(router, los: np.ndarray, his: np.ndarray):
    """PR 2's ``route_single_shard``, frozen."""
    no_straddlers = np.zeros(0, dtype=np.int64)
    if router.num_shards == 1:
        return {0: (los, his, np.arange(los.size, dtype=np.int64))}, no_straddlers
    width = np.uint64(router.shard_width)
    sid_lo = (los // width).astype(np.int64)
    sid_hi = (his // width).astype(np.int64)
    single = sid_lo == sid_hi
    per_shard = {}
    if single.any():
        qids = np.flatnonzero(single)
        order = np.argsort(sid_lo[qids], kind="stable")
        qids = qids[order]
        sids = sid_lo[qids]
        cuts = np.flatnonzero(np.diff(sids)) + 1
        for group in np.split(qids, cuts):
            sid = int(sid_lo[group[0]])
            per_shard[sid] = (los[group], his[group], group)
    return per_shard, np.flatnonzero(~single)


def _legacy_ef_contains_batch(ef, los: np.ndarray, his: np.ndarray) -> np.ndarray:
    if len(ef) == 0 or los.size == 0:
        return np.zeros(los.shape, dtype=bool)
    codes = ef.to_array()
    idx = np.searchsorted(codes, his, side="right")
    pred = codes[np.maximum(idx - 1, 0)]
    return (idx > 0) & (pred >= los) & (los <= his)


def _legacy_grafite_batch(filt: Grafite, los: np.ndarray, his: np.ndarray) -> np.ndarray:
    if filt.key_count == 0:
        return np.zeros(los.size, dtype=bool)
    if filt.is_exact:
        return _legacy_ef_contains_batch(filt._ef, los, his)
    r = np.uint64(filt.reduced_universe)
    result = np.zeros(los.size, dtype=bool)
    full = (his - los) >= np.uint64(filt.reduced_universe - 1)
    result[full] = True
    qid = np.flatnonzero(~full)
    if qid.size == 0:
        return result
    q_lo, q_hi = los[qid], his[qid]
    lo_block = q_lo // r
    hi_block = q_hi // r
    split = lo_block != hi_block
    boundary = q_hi - (q_hi % r)
    seg_lo = np.concatenate([q_lo, boundary[split]])
    seg_hi = np.concatenate(
        [np.where(split, boundary - np.uint64(1), q_hi), q_hi[split]]
    )
    seg_qid = np.concatenate([qid, qid[split]])
    blocks, inverse = np.unique(seg_lo // r, return_inverse=True)
    offsets = np.fromiter(  # the per-distinct-block python loop of PR 2
        (filt._hash.hash_block(int(b)) for b in blocks),
        dtype=np.uint64,
        count=blocks.size,
    )[inverse]
    h_lo = (offsets + (seg_lo % r)) % r
    h_hi = (offsets + (seg_hi % r)) % r
    wrap = h_lo > h_hi
    int_lo = np.concatenate([np.where(wrap, np.uint64(0), h_lo), h_lo[wrap]])
    int_hi = np.concatenate(
        [h_hi, np.full(int(wrap.sum()), filt.reduced_universe - 1, dtype=np.uint64)]
    )
    int_qid = np.concatenate([seg_qid, seg_qid[wrap]])
    hits = _legacy_ef_contains_batch(filt._ef, int_lo, int_hi)
    np.logical_or.at(result, int_qid, hits)
    return result


def _legacy_shard_batch_empty(store, q_lo: np.ndarray, q_hi: np.ndarray) -> np.ndarray:
    maybe = np.zeros(q_lo.size, dtype=bool)
    memtable = store._memtable
    if len(memtable):
        for j in range(q_lo.size):  # the per-query python memtable scan
            for _ in memtable.scan(int(q_lo[j]), int(q_hi[j])):
                maybe[j] = True
                break
    runs = store._runs()
    for run in runs:
        if run.filter is None:
            maybe[:] = True
        elif isinstance(run.filter, Grafite):
            maybe |= _legacy_grafite_batch(run.filter, q_lo, q_hi)
        else:  # pragma: no cover - bench builds Grafite-filtered runs only
            maybe |= run.filter.may_contain_range_batch(q_lo, q_hi)
    empty = np.ones(q_lo.size, dtype=bool)
    for j in np.flatnonzero(maybe):
        if not store.range_empty(int(q_lo[j]), int(q_hi[j])):
            empty[j] = False
    return empty


def _legacy_batch_range_empty(engine: ShardedEngine, los, his) -> np.ndarray:
    los, his = validate_batch_bounds(engine.universe, los, his)
    empty = np.ones(los.size, dtype=bool)
    singles, straddlers = _legacy_route_single_shard(engine.router, los, his)
    for sid, (q_lo, q_hi, qid) in singles.items():
        sub = _legacy_shard_batch_empty(engine.shards[sid], q_lo, q_hi)
        empty[qid[~sub]] = False
    for qid in straddlers:  # python split per straddler, as in PR 2
        empty[qid] = all(
            engine.shards[sid].range_empty(seg_lo, seg_hi)
            for sid, seg_lo, seg_hi in engine.router.split(int(los[qid]), int(his[qid]))
        )
    return empty


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def router_cell() -> Dict[str, float]:
    """Columnar pipeline vs. the frozen tuple fan-out, single-threaded."""
    engine = build_engine()
    los, his = probe_bounds(BIG_BATCH)
    reference = engine.batch_range_empty(los, his)
    legacy = _legacy_batch_range_empty(engine, los, his)
    assert bool((reference == legacy).all()), "legacy reference diverged"
    columnar = timing_stats(
        lambda: engine.batch_range_empty(los, his), ops=BIG_BATCH, repeat=3
    )
    tuple_fanout = timing_stats(
        lambda: _legacy_batch_range_empty(engine, los, his), ops=BIG_BATCH, repeat=3
    )
    return {
        "batch_size": BIG_BATCH,
        "columnar_qps": columnar["op_s"],
        "columnar_p50_s": columnar["p50_s"],
        "columnar_p99_s": columnar["p99_s"],
        "legacy_qps": tuple_fanout["op_s"],
        "speedup": columnar["op_s"] / tuple_fanout["op_s"],
        "empty_fraction": float(reference.mean()),
    }


@functools.lru_cache(maxsize=None)
def mode_cell(mode: str, workers: int) -> Dict[str, float]:
    """Service throughput on the big batch at ``workers`` threads/processes."""
    engine = build_engine()
    los, his = probe_bounds(BIG_BATCH)
    reference = engine.batch_range_empty(los, his)
    with RangeQueryService(
        engine,
        num_threads=workers,
        cache_blocks=0,
        mode=mode,
        num_workers=workers,
    ) as service:
        got = service.batch_range_empty(los, his)
        assert bool((got == reference).all()), f"{mode} mode diverged"
        stats = timing_stats(
            lambda: service.batch_range_empty(los, his), ops=BIG_BATCH, repeat=3
        )
        worker_queries = service.worker_queries
    return {
        "mode": mode,
        "workers": workers,
        "qps": stats["op_s"],
        "p50_s": stats["p50_s"],
        "p99_s": stats["p99_s"],
        "worker_queries": worker_queries,
    }


# ----------------------------------------------------------------------
# ISSUE 10: shared-memory block cache vs. duplicated per-worker caches
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def build_cache_engine() -> ShardedEngine:
    """A persistent *unfiltered* engine: with no range filters every
    probe verifies against run blocks, so the block cache sits on the
    hot path and the simulated device latency on misses is the
    dominant serving cost."""
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED + 11)
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=NUM_SHARDS,
        memtable_limit=max(512, N_KEYS // 8),
        compaction_fanout=4,
        filter_factory=None,
        directory=os.path.join(_TMP.name, "cache-db"),
    )
    arrival = keys[np.random.default_rng(SEED + 12).permutation(keys.size)]
    for key in arrival:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return engine


@functools.lru_cache(maxsize=None)
def hot_shard_blocks() -> int:
    """Block working set of the hot shard (shard 0)."""
    engine = build_cache_engine()
    return sum(run.block_count for run in engine.shards[0]._runs())


@functools.lru_cache(maxsize=None)
def skewed_probe_bounds() -> Tuple[np.ndarray, np.ndarray]:
    """A 90/10 hot/cold probe batch: most probes land on shard 0, the
    rest spread across the other shards, and every probe stays inside
    one shard so exactly one snapshot worker answers it. This is the
    skew that makes cache *placement* matter — one worker carries
    nearly all the traffic, so its private replica is the bottleneck
    while a shared slab lets the hot shard use the whole budget."""
    engine = build_cache_engine()
    width = int(engine.router.shard_width)
    rng = np.random.default_rng(SEED + 13)
    n_hot = int(CACHE_BATCH * HOT_FRACTION)
    n_cold = CACHE_BATCH - n_hot
    lo_hot = rng.integers(0, width - RANGE, n_hot, dtype=np.uint64)
    cold_shard = rng.integers(1, NUM_SHARDS, n_cold, dtype=np.uint64)
    lo_cold = cold_shard * np.uint64(width) + rng.integers(
        0, width - RANGE, n_cold, dtype=np.uint64
    )
    los = np.concatenate([lo_hot, lo_cold])
    rng.shuffle(los)
    his = los + np.uint64(RANGE - 1)
    return los, his


@functools.lru_cache(maxsize=None)
def cache_cell(shared: bool) -> Dict[str, float]:
    """4-worker process-mode serving with the block cache either shared
    (one :class:`SharedBlockCache` slab every worker attaches to) or
    duplicated (the legacy private replica per worker), at equal
    aggregate capacity: ``N`` slab blocks vs. ``N / workers`` blocks
    per replica. The duplicated hot worker can only ever use ``1 /
    workers`` of the budget; the shared slab gives the skewed traffic
    the whole of it, and one warm pass fills it for every process."""
    engine = build_cache_engine()
    engine.attach_block_cache(None)  # fresh cache per configuration
    los, his = skewed_probe_bounds()
    reference = engine.batch_range_empty(los, his)
    per_worker = max(8, hot_shard_blocks() // 2)
    cache_blocks = per_worker * CACHE_WORKERS if shared else per_worker
    with RangeQueryService(
        engine,
        num_threads=CACHE_WORKERS,
        cache_blocks=cache_blocks,
        miss_latency=CACHE_MISS_LATENCY,
        mode="process",
        num_workers=CACHE_WORKERS,
        shared_cache=shared,
    ) as service:
        got = service.batch_range_empty(los, his)  # warm pass
        assert bool((got == reference).all()), "cache cell diverged"
        before = engine.stats
        stats = timing_stats(
            lambda: service.batch_range_empty(los, his),
            ops=CACHE_BATCH,
            repeat=3,
        )
        after = engine.stats
    engine.attach_block_cache(None)
    hits = after.cache_hits - before.cache_hits
    misses = after.cache_misses - before.cache_misses
    return {
        "shared": shared,
        "cache_blocks": cache_blocks,
        "per_worker_blocks": per_worker if not shared else 0,
        "qps": stats["op_s"],
        "p50_s": stats["p50_s"],
        "p99_s": stats["p99_s"],
        "hits": hits,
        "misses": misses,
        "hit_ratio": hits / max(1, hits + misses),
    }


def popcount_cell(n_words: int = 1 << 20) -> Dict[str, float]:
    """The bitvector popcount kernel: hardware ufunc vs. table walk."""
    words = np.random.default_rng(SEED).integers(
        0, 2**64, n_words, dtype=np.uint64
    )
    assert bool((popcount_words(words) == _popcount_words_table(words)).all())
    table = timing_stats(lambda: _popcount_words_table(words), ops=n_words)
    active = timing_stats(lambda: popcount_words(words), ops=n_words)
    return {
        "n_words": n_words,
        "has_bitwise_count": HAS_BITWISE_COUNT,
        "active_words_per_s": active["op_s"],
        "table_words_per_s": table["op_s"],
        "speedup_over_table": table["best_s"] / active["best_s"],
    }


def _report() -> Dict[str, object]:
    router = router_cell()
    modes: List[Dict[str, float]] = [
        mode_cell(mode, workers)
        for workers in WORKER_COUNTS
        for mode in ("thread", "process")
    ]
    popcount = popcount_cell()
    cache = {
        "duplicated": cache_cell(False),
        "shared": cache_cell(True),
    }
    rows = [
        ["columnar router", "-", f"{router['columnar_qps']:,.0f}",
         f"{router['speedup']:.2f}x vs tuple fan-out"],
        ["tuple fan-out (PR 2)", "-", f"{router['legacy_qps']:,.0f}", "baseline"],
    ]
    by_key = {(c["mode"], c["workers"]): c for c in modes}
    for workers in WORKER_COUNTS:
        thread_qps = by_key[("thread", workers)]["qps"]
        process_qps = by_key[("process", workers)]["qps"]
        rows.append(
            ["thread mode", workers, f"{thread_qps:,.0f}", "-"]
        )
        rows.append(
            ["process mode", workers, f"{process_qps:,.0f}",
             f"{process_qps / thread_qps:.2f}x vs threads"]
        )
    rows.append(
        ["duplicated caches", CACHE_WORKERS,
         f"{cache['duplicated']['qps']:,.0f}",
         f"hit ratio {cache['duplicated']['hit_ratio']:.0%}"]
    )
    rows.append(
        ["shared cache", CACHE_WORKERS,
         f"{cache['shared']['qps']:,.0f}",
         f"{cache['shared']['qps'] / cache['duplicated']['qps']:.2f}x vs "
         f"duplicated, hit ratio {cache['shared']['hit_ratio']:.0%}"]
    )
    rows.append(
        ["popcount kernel",
         "bitwise_count" if popcount["has_bitwise_count"] else "table",
         f"{popcount['active_words_per_s']:,.0f} words/s",
         f"{popcount['speedup_over_table']:.2f}x vs table"]
    )
    register_report(
        "mp_scaling",
        format_table(
            ["path", "workers", "q/s", "relative"],
            rows,
            title=(
                f"Columnar + multi-process scaling ({N_KEYS:,} keys, "
                f"{NUM_SHARDS} shards, {BIG_BATCH:,}-query batch, "
                f"Grafite {BITS_PER_KEY} bpk, range {RANGE}, "
                f"{os.cpu_count()} CPUs)"
            ),
        ),
    )
    write_bench_json(
        "mp_scaling",
        results={
            "router": router,
            "modes": modes,
            "popcount": popcount,
            "floors": {
                "columnar_over_tuple": COLUMNAR_FLOOR,
                "process_over_thread": PROCESS_FLOOR,
                "process_floor_enforced": (os.cpu_count() or 1) >= 4,
            },
        },
        config={
            "n_keys": N_KEYS,
            "num_shards": NUM_SHARDS,
            "batch_size": BIG_BATCH,
            "bits_per_key": BITS_PER_KEY,
            "range_size": RANGE,
            "worker_counts": list(WORKER_COUNTS),
        },
    )
    merge_bench_json(
        "storage",
        section="shared_cache",
        results=cache,
        config={
            "n_keys": N_KEYS,
            "num_shards": NUM_SHARDS,
            "workers": CACHE_WORKERS,
            "batch_size": CACHE_BATCH,
            "hot_fraction": HOT_FRACTION,
            "miss_latency_s": CACHE_MISS_LATENCY,
            "hot_shard_blocks": hot_shard_blocks(),
            "range_size": RANGE,
            "shared_cache_floor": SHARED_CACHE_FLOOR,
        },
    )
    return {"router": router, "modes": by_key, "cache": cache}


def test_columnar_router_beats_tuple_fanout():
    """ISSUE 3 acceptance bar: >= 1.5x over the frozen PR 2 fan-out at
    the big cross-shard batch — the anti-regression floor for per-query
    python loops on the batch path."""
    data = _report()
    speedup = data["router"]["speedup"]
    assert speedup >= COLUMNAR_FLOOR, (
        f"columnar router only {speedup:.2f}x over the tuple fan-out "
        f"(floor {COLUMNAR_FLOOR}x) — a per-query loop crept back in?"
    )


def test_process_mode_scales_past_threads():
    """ISSUE 3 acceptance bar: process mode >= 2x thread mode at 4
    workers on the CPU-bound batch. Only meaningful with >= 4 CPUs; on
    smaller hosts the cells are still recorded in the JSON artifact but
    the floor cannot be demanded of the hardware."""
    data = _report()
    thread_qps = data["modes"][("thread", 4)]["qps"]
    process_qps = data["modes"][("process", 4)]["qps"]
    ratio = process_qps / thread_qps
    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"host has {os.cpu_count()} CPU(s); recorded ratio {ratio:.2f}x"
        )
    assert ratio >= PROCESS_FLOOR, (
        f"process mode only {ratio:.2f}x over thread mode at 4 workers "
        f"(floor {PROCESS_FLOOR}x)"
    )


def test_shared_cache_beats_duplicated_caches():
    """ISSUE 10 acceptance bar: at equal aggregate capacity, 4-worker
    process mode with the shared-memory block cache sustains >= 1.3x
    the throughput of the legacy duplicated per-worker caches on the
    skewed batch. The skew concentrates traffic on one worker, whose
    private replica holds only a quarter of the budget — its misses pay
    the simulated device latency that the shared slab avoids."""
    data = _report()
    dup = data["cache"]["duplicated"]
    shr = data["cache"]["shared"]
    ratio = shr["qps"] / dup["qps"]
    assert ratio >= SHARED_CACHE_FLOOR, (
        f"shared cache only {ratio:.2f}x over duplicated caches "
        f"(floor {SHARED_CACHE_FLOOR}x; hit ratios "
        f"shared {shr['hit_ratio']:.0%} vs dup {dup['hit_ratio']:.0%})"
    )


def test_shared_cache_hits_accumulate_across_workers():
    """The throughput claim is grounded in cache accounting: the shared
    slab must end the timed passes with a strictly higher hit ratio
    than the duplicated replicas, and both configurations must have
    actually exercised the cache."""
    data = _report()
    dup = data["cache"]["duplicated"]
    shr = data["cache"]["shared"]
    assert shr["hits"] > 0 and dup["hits"] + dup["misses"] > 0
    assert shr["hit_ratio"] > dup["hit_ratio"], (dup, shr)


def test_process_mode_uses_workers():
    """The scaling claim is vacuous if queries quietly fall back to the
    locked in-process path: on the clean post-checkpoint epoch every
    probe of the batch must be answered by a snapshot worker."""
    cell = mode_cell("process", 2)
    assert cell["worker_queries"] >= BIG_BATCH, cell


@pytest.mark.benchmark(group="mp-scaling")
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_process_batch(benchmark, workers):
    engine = build_engine()
    los, his = probe_bounds(max(256, BIG_BATCH // 4))
    with RangeQueryService(
        engine, num_threads=workers, cache_blocks=0,
        mode="process", num_workers=workers,
    ) as service:
        benchmark(lambda: service.batch_range_empty(los, his))
