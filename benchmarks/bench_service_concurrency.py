"""Service concurrency: thread-pool batch fan-out vs. the single-threaded engine.

The serving question this answers: once probe batches contend with real
storage latency, what do worker threads buy? Both paths — the
single-threaded :meth:`ShardedEngine.batch_range_empty` and the
:class:`RangeQueryService` pool — run the *identical* read stack: the
same shards, the same filters, and the same block cache configured with
a simulated per-miss device latency (the sleep releases the GIL, so
overlap is real parallelism even where python bytecode is not). The
workload is sized so the working set exceeds the cache — the regime
where a serving tier actually needs concurrency; a cache-resident
workload would measure pure python dispatch instead.

Grid: threads × batch size, on a shard count wide enough that cross-
shard fan-out has parallelism to find (every batch is cross-shard: its
queries collectively span all shards, and boundary-straddling queries
split and re-merge). The acceptance bar is the ISSUE 2 criterion: at
>= 4 threads the service must finish a 10k-query cross-shard batch
faster than the single-threaded engine path.
"""

from __future__ import annotations

import functools
import time

import numpy as np
import pytest

import _common
from _common import SEED, UNIVERSE, register_report, write_bench_json
from repro.analysis.report import format_table
from repro.core.grafite import Grafite
from repro.engine import RangeQueryService, ShardedEngine
from repro.lsm import BlockCache
from repro.workloads.datasets import uniform
from repro.workloads.queries import nonempty_queries, uncorrelated_queries

N_KEYS = max(4_000, int(60_000 * _common.SCALE))
BIG_BATCH = max(1_000, int(10_000 * _common.SCALE))
BATCH_SIZES = (max(256, BIG_BATCH // 4), BIG_BATCH)
THREAD_COUNTS = (1, 2, 4, 8)
NUM_SHARDS = 8
RANGE = 64
BITS_PER_KEY = 14
#: Simulated device latency per block-cache miss (an SSD read plus queueing).
MISS_LATENCY = 200e-6
#: Deliberately smaller than even one shard's working set so misses keep
#: occurring mid-batch — the regime where threads have latency to hide.
#: (The batch layer groups queries by shard, so a cache that holds one
#: shard's blocks would absorb everything after the first touch; scale
#: with the dataset so REPRO_SCALE keeps the same regime.)
CACHE_BLOCKS = max(4, N_KEYS // 4096)
#: Fraction of probes that hit stored keys (these always verify, i.e.
#: touch the "disk"; the empty rest mostly die in the filters).
NONEMPTY_FRACTION = 0.75


def _factory(keys, universe):
    return Grafite(
        keys, universe, bits_per_key=BITS_PER_KEY, max_range_size=RANGE, seed=SEED
    )


@functools.lru_cache(maxsize=None)
def build_engine() -> ShardedEngine:
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=NUM_SHARDS,
        memtable_limit=max(512, N_KEYS // 8),
        compaction_fanout=4,
        filter_factory=_factory,
    )
    arrival = keys[np.random.default_rng(SEED + 1).permutation(keys.size)]
    for key in arrival:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    # One shared cache for every measured path: same capacity, same
    # simulated latency, so only the threading differs between cells.
    engine.attach_block_cache(
        BlockCache(CACHE_BLOCKS, num_stripes=4, miss_latency=MISS_LATENCY)
    )
    return engine


@functools.lru_cache(maxsize=None)
def probe_bounds(batch_size: int):
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    n_hit = int(batch_size * NONEMPTY_FRACTION)
    hits = nonempty_queries(keys, n_hit, RANGE, UNIVERSE, seed=SEED + 2)
    empties = uncorrelated_queries(
        batch_size - n_hit, RANGE, UNIVERSE, keys=keys, seed=SEED + 3
    )
    queries = list(hits) + list(empties)
    rng = np.random.default_rng(SEED + 4)
    order = rng.permutation(len(queries))
    los = np.asarray([queries[i][0] for i in order], dtype=np.uint64)
    his = np.asarray([queries[i][1] for i in order], dtype=np.uint64)
    return los, his


def _time(engine: ShardedEngine, fn, repeat: int = 2) -> float:
    best = float("inf")
    for _ in range(repeat):
        engine.block_cache.clear()  # cold device every rep, fair to both
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@functools.lru_cache(maxsize=None)
def concurrency_cell(num_threads: int, batch_size: int) -> dict:
    """Wall-clock for the service at ``num_threads`` vs. the engine."""
    engine = build_engine()
    los, his = probe_bounds(batch_size)
    engine_seconds = _time(
        engine, lambda: engine.batch_range_empty(los, his)
    )
    reference = engine.batch_range_empty(los, his)
    with RangeQueryService(
        engine, num_threads=num_threads, cache_blocks=0
    ) as service:
        service_seconds = _time(
            engine, lambda: service.batch_range_empty(los, his)
        )
        got = service.batch_range_empty(los, his)
    assert bool((got == reference).all()), (
        "service results must match the single-threaded engine"
    )
    return {
        "engine_qps": batch_size / engine_seconds,
        "service_qps": batch_size / service_seconds,
        "speedup": engine_seconds / service_seconds,
        "empty_fraction": float(reference.mean()),
    }


def _report():
    rows = []
    cells = []
    for batch_size in BATCH_SIZES:
        for num_threads in THREAD_COUNTS:
            cell = concurrency_cell(num_threads, batch_size)
            cells.append({"batch_size": batch_size, "threads": num_threads, **cell})
            rows.append(
                [
                    f"{batch_size:,}",
                    num_threads,
                    f"{cell['engine_qps']:,.0f}",
                    f"{cell['service_qps']:,.0f}",
                    f"{cell['speedup']:.2f}x",
                    f"{cell['empty_fraction']:.3f}",
                ]
            )
    write_bench_json(
        "service_concurrency",
        results=cells,
        config={
            "n_keys": N_KEYS,
            "num_shards": NUM_SHARDS,
            "bits_per_key": BITS_PER_KEY,
            "range_size": RANGE,
            "miss_latency_s": MISS_LATENCY,
            "cache_blocks": CACHE_BLOCKS,
            "nonempty_fraction": NONEMPTY_FRACTION,
        },
    )
    register_report(
        "service_concurrency",
        format_table(
            [
                "batch size", "threads", "engine q/s (1 thread)",
                "service q/s", "speedup", "empty frac",
            ],
            rows,
            title=(
                f"RangeQueryService fan-out ({N_KEYS:,} keys, "
                f"{NUM_SHARDS} shards, Grafite {BITS_PER_KEY} bpk, "
                f"range {RANGE}, {MISS_LATENCY * 1e6:.0f}us miss latency, "
                f"{CACHE_BLOCKS}-block cache)"
            ),
        ),
    )


def test_four_threads_beat_single_threaded_engine_at_10k():
    """ISSUE 2 acceptance bar: >= 4 threads serve the 10k cross-shard
    batch faster than the single-threaded ShardedEngine path."""
    _report()
    best = max(
        concurrency_cell(t, BIG_BATCH)["speedup"] for t in THREAD_COUNTS if t >= 4
    )
    assert best > 1.0, f"expected a >= 4-thread speedup, best was {best:.2f}x"


def test_speedup_scales_with_threads():
    """More workers must not make the 10k batch slower: the 4-thread cell
    should beat the 1-thread *service* cell (pool overhead is constant)."""
    one = concurrency_cell(1, BIG_BATCH)["service_qps"]
    four = concurrency_cell(4, BIG_BATCH)["service_qps"]
    assert four > one, f"4 threads ({four:,.0f} q/s) <= 1 thread ({one:,.0f} q/s)"


@pytest.mark.benchmark(group="service-concurrency")
@pytest.mark.parametrize("num_threads", THREAD_COUNTS)
def test_bench_service_batch(benchmark, num_threads):
    engine = build_engine()
    los, his = probe_bounds(BATCH_SIZES[0])
    with RangeQueryService(
        engine, num_threads=num_threads, cache_blocks=0
    ) as service:
        benchmark(lambda: service.batch_range_empty(los, his))
