"""Figure 5: robust range filters — Grafite vs Rosetta vs REncoder.

Same grid as Figure 4 (four workload rows x three range sizes x space
sweep), restricted to the filters with (near-)distribution-free
behaviour.

Expected shape (paper §6.4): Grafite dominates both competitors on every
combination — FPR better by up to 4 orders of magnitude vs REncoder and
5 vs Rosetta, queries ~9.5–11x faster than REncoder and ~82–92x faster
than Rosetta (C++ constants; our Python ratios differ but the ordering
and scale of the gaps persist), with the most predictable FPR overall.
"""

from __future__ import annotations

import functools

import pytest

import _common
from _common import (
    BPK_SWEEP,
    RANGE_SIZES,
    figure_grid,
    get_filter,
    register_report,
    run_query_batch,
    workload,
)
from repro.analysis.report import format_series, format_speed_table

FILTERS = ("Grafite", "Rosetta", "REncoder")


@functools.lru_cache(maxsize=None)
def compute_figure5():
    return figure_grid(FILTERS)


def _report():
    fpr, avg_times = compute_figure5()
    sections = []
    for row_label in fpr:
        for range_label in RANGE_SIZES:
            cell = fpr[row_label][range_label]
            sections.append(
                format_series(
                    "bits/key",
                    list(BPK_SWEEP),
                    [(n, [f"{v:.2e}" for v in cell[n]]) for n in FILTERS],
                    title=f"Figure 5 — {row_label}, {range_label} ranges: FPR vs space",
                )
            )
        sections.append(
            format_speed_table(
                list(avg_times[row_label].items()),
                f"Figure 5 — {row_label}: avg query time",
            )
        )
    register_report("fig5_robust", "\n\n".join(sections))
    return fpr, avg_times


def test_fig5_grafite_dominates():
    """§6.4: Grafite dominates robust filters in FPR and query time."""
    fpr, avg_times = _report()
    noise = 5.0 / _common.N_QUERIES  # small-sample slack on measured FPR
    for row_label, row in fpr.items():
        for range_label, cell in row.items():
            grafite_total = sum(cell["Grafite"])
            for rival in ("Rosetta", "REncoder"):
                assert grafite_total <= sum(cell[rival]) + len(BPK_SWEEP) * noise, (
                    row_label, range_label, rival, cell,
                )
    for row_label, row_times in avg_times.items():
        assert row_times["Grafite"] < row_times["Rosetta"], row_label
        # REncoder's Python constants are kinder than its C++ ones; the
        # paper's 9.5x gap need not hold, but Grafite must not lose badly.
        assert row_times["Grafite"] < 3 * row_times["REncoder"], row_label


def test_fig5_fpr_tracks_corollary_bound():
    """Grafite's measured FPR stays below min(1, ell/2^(B-2)) everywhere."""
    fpr, _ = _report()
    noise = 5.0 / _common.N_QUERIES
    for row_label, row in fpr.items():
        for range_label, cell in row.items():
            ell = RANGE_SIZES[range_label]
            for bpk, measured in zip(BPK_SWEEP, cell["Grafite"]):
                bound = min(1.0, ell / 2 ** (bpk - 2))
                assert measured <= bound + noise, (
                    row_label, range_label, bpk, measured, bound,
                )


@pytest.mark.parametrize("name", FILTERS)
def test_fig5_query_benchmark(benchmark, name):
    """pytest-benchmark: correlated small-range batch per robust filter."""
    build_keys, queries = workload("uniform", "correlated", RANGE_SIZES["small"])
    filt = get_filter(
        name, "uniform", 20, RANGE_SIZES["small"],
        workload_kind="correlated", keys=build_keys,
    )
    benchmark(run_query_batch, filt, queries)
