"""Auto-tuning acceptance bench: auto vs. static backends across phases.

ISSUE 4's acceptance bar: on a workload with mixed correlated and
uncorrelated phases, the auto-tuned engine must land within 10% of the
*best static* backend on the FPR x latency product — in **both** phases.
Neither static backend can do that by itself:

* static SNARF wins the uncorrelated phase (learned slots, tiny FPR on
  short ranges, Fig. 4) but collapses toward FPR ~ 1 when the queries
  hug the keys (Fig. 3);
* static Grafite holds its design epsilon everywhere (Theorem 3.4) but
  leaves the uncorrelated-phase advantage on the table.

The auto-tuner observes each phase and converges to the phase winner —
the measured segments start after a warmup that absorbs the decision
windows, the backend rebuild, and one probation-gated heuristic retry.

Scoring is deterministic so the gate cannot flake on CI timing: the
FPR term is wasted run reads per probe (every query is crafted empty,
so every wasted read is a filter false positive), and the latency term
is an I/O-model cost — 1 unit of filter work per probe plus
``READ_COST`` units per performed run read, the same accounting the
block cache's ``miss_latency`` simulates in wall-clock form. Measured
wall-clock q/s is recorded in the JSON artifact alongside, but the
gate rides on the model. Results land in ``BENCH_autotune.json``.
"""

from __future__ import annotations

import functools
from typing import Dict, List

import numpy as np

import _common
from _common import SEED, register_report, write_bench_json
from repro.analysis.report import format_table
from repro.engine import AutoTunePolicy, AutoTuner, ShardedEngine
from repro.filters.registry import FilterSpec
from repro.workloads.datasets import uniform
from repro.workloads.queries import correlated_queries, uncorrelated_queries

#: Sparse universe: heuristic slot/prefix resolution is then coarser than
#: the correlated offset, the regime where Fig. 3's collapse manifests.
UNIVERSE = 2**44
N_KEYS = max(4_000, int(20_000 * _common.SCALE))
BATCH = max(1_000, int(2_000 * _common.SCALE))
NUM_SHARDS = 2
RANGE = 16
BITS_PER_KEY = 16
READ_COST = 50.0       #: latency-model units per performed run read
FPR_FLOOR = 1e-3       #: keeps the product meaningful at FPR ~ 0
TOLERANCE = 1.10       #: auto must be within 10% of the best static

STATIC_BACKENDS = ("grafite", "snarf")

#: (phase name, warmup batches, measured batches). The correlated warmup
#: is sized to absorb: eviction (1 window) + probation (2) + the single
#: probation-gated retry + re-eviction — after which the retry backoff
#: (growth x initial) exceeds any measured horizon.
PHASES = (
    ("uncorrelated", 2, 6),
    ("correlated", 6, 6),
)


def _phase_queries(keys: np.ndarray, phase: str, seed: int):
    if phase == "correlated":
        return correlated_queries(
            keys, BATCH, RANGE, UNIVERSE, correlation_degree=1.0, seed=seed
        )
    return uncorrelated_queries(BATCH, RANGE, UNIVERSE, keys=keys, seed=seed)


def _build(kind: str) -> ShardedEngine:
    """A loaded engine: ``kind`` is a static backend name or ``"auto"``."""
    backend = "grafite" if kind == "auto" else kind
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=NUM_SHARDS,
        memtable_limit=max(1024, N_KEYS // 4),
        filter_spec=FilterSpec(
            backend=backend, bits_per_key=BITS_PER_KEY,
            max_range_size=RANGE, seed=SEED,
        ),
    )
    if kind == "auto":
        engine.attach_autotuner(
            AutoTuner(
                AutoTunePolicy(
                    min_window=max(64, BATCH // (2 * NUM_SHARDS)),
                    probation_growth=64,
                )
            )
        )
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    arrival = keys[np.random.default_rng(SEED + 1).permutation(keys.size)]
    for key in arrival:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return engine


def _run_phases(engine: ShardedEngine) -> List[Dict[str, float]]:
    """Drive the phase schedule; measure FPR + latency model per phase."""
    import time

    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    cells = []
    batch_index = 0
    for phase, warmup, measured in PHASES:
        for _ in range(warmup):
            queries = _phase_queries(keys, phase, SEED + 100 + batch_index)
            batch_index += 1
            los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
            his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
            warm = engine.batch_range_empty(los, his)
            assert warm.all()
        stats0 = engine.stats
        probes = 0
        wall = 0.0
        for _ in range(measured):
            queries = _phase_queries(keys, phase, SEED + 100 + batch_index)
            batch_index += 1
            los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
            his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
            t0 = time.perf_counter()
            result = engine.batch_range_empty(los, his)
            wall += time.perf_counter() - t0
            if not result.all():  # pragma: no cover - queries crafted empty
                raise AssertionError("crafted queries must all be empty")
            probes += int(result.size)
        stats1 = engine.stats
        fpr = (stats1.wasted_reads - stats0.wasted_reads) / probes
        reads_per_q = (stats1.reads_performed - stats0.reads_performed) / probes
        latency_units = 1.0 + READ_COST * reads_per_q
        cells.append({
            "phase": phase,
            "probes": probes,
            "fpr": fpr,
            "reads_per_query": reads_per_q,
            "latency_units": latency_units,
            "score": (fpr + FPR_FLOOR) * latency_units,
            "wall_qps": probes / wall if wall else 0.0,
        })
    return cells


@functools.lru_cache(maxsize=None)
def _grid() -> Dict[str, List[Dict[str, float]]]:
    grid: Dict[str, List[Dict[str, float]]] = {}
    tuner_meta: Dict[str, object] = {}
    for kind in STATIC_BACKENDS + ("auto",):
        engine = _build(kind)
        grid[kind] = _run_phases(engine)
        if kind == "auto":
            tuner = engine.autotuner
            tuner_meta = {
                "decisions": [
                    {
                        "shard": d.shard_id,
                        "from": d.previous.backend,
                        "to": d.chosen.backend,
                        "fp_rate": d.fp_rate,
                    }
                    for d in tuner.decisions
                ],
                "final_backends": tuner.backend_counts(),
            }
    rows = []
    for kind, cells in grid.items():
        for cell in cells:
            rows.append([
                kind, cell["phase"], f"{cell['fpr']:.2e}",
                f"{cell['latency_units']:.1f}", f"{cell['score']:.4f}",
                f"{cell['wall_qps']:,.0f}",
            ])
    register_report(
        "autotune",
        format_table(
            ["engine", "phase", "FPR", "latency (model)", "FPR x latency", "wall q/s"],
            rows,
            title=(
                f"Auto-tuning vs static backends ({N_KEYS:,} keys, u=2^44, "
                f"{NUM_SHARDS} shards, range {RANGE}, {BITS_PER_KEY} bpk, "
                f"{BATCH:,}-query batches)"
            ),
        ),
    )
    write_bench_json(
        "autotune",
        results={"grid": grid, "tuner": tuner_meta},
        config={
            "n_keys": N_KEYS,
            "universe_bits": 44,
            "num_shards": NUM_SHARDS,
            "batch": BATCH,
            "range_size": RANGE,
            "bits_per_key": BITS_PER_KEY,
            "read_cost_units": READ_COST,
            "fpr_floor": FPR_FLOOR,
            "tolerance": TOLERANCE,
            "phases": [list(p) for p in PHASES],
            "static_backends": list(STATIC_BACKENDS),
        },
    )
    return grid


def _phase_cell(cells: List[Dict[str, float]], phase: str) -> Dict[str, float]:
    return next(c for c in cells if c["phase"] == phase)


def test_static_backends_split_the_phases():
    """The premise: each phase has a different static winner, so no
    static choice can match auto everywhere."""
    grid = _grid()
    unc_snarf = _phase_cell(grid["snarf"], "uncorrelated")["score"]
    unc_grafite = _phase_cell(grid["grafite"], "uncorrelated")["score"]
    cor_snarf = _phase_cell(grid["snarf"], "correlated")["score"]
    cor_grafite = _phase_cell(grid["grafite"], "correlated")["score"]
    assert unc_snarf < unc_grafite, (unc_snarf, unc_grafite)
    assert cor_grafite < cor_snarf, (cor_grafite, cor_snarf)
    # And the collapse is qualitative, not marginal (Fig. 3's cliff).
    assert _phase_cell(grid["snarf"], "correlated")["fpr"] > 0.5


def test_auto_within_tolerance_of_best_static_per_phase():
    """ISSUE 4 acceptance: auto >= best static within 10% on FPR x latency
    in both the correlated and the uncorrelated phase."""
    grid = _grid()
    for phase in ("uncorrelated", "correlated"):
        auto = _phase_cell(grid["auto"], phase)["score"]
        best = min(
            _phase_cell(grid[b], phase)["score"] for b in STATIC_BACKENDS
        )
        assert auto <= best * TOLERANCE, (
            f"auto scored {auto:.4f} in the {phase} phase; best static is "
            f"{best:.4f} (tolerance {TOLERANCE}x)"
        )


def test_auto_actually_switches_backends():
    """Guard against a vacuous pass: the tuner must have adopted the
    heuristic in the uncorrelated phase and fallen back to the robust
    default under correlation."""
    grid = _grid()
    assert grid  # populate the cache (tuner metadata is written there)
    import json
    from pathlib import Path

    payload = json.loads(
        (Path(__file__).parent / "results" / "BENCH_autotune.json").read_text()
    )
    moves = {(d["from"], d["to"]) for d in payload["results"]["tuner"]["decisions"]}
    assert ("grafite", "snarf") in moves, moves
    assert ("snarf", "grafite") in moves, moves
    assert payload["results"]["tuner"]["final_backends"] == {
        "grafite": NUM_SHARDS
    }, payload["results"]["tuner"]
