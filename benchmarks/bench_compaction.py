"""Compaction-policy write-amplification + probe-throughput bench.

The question ISSUE 5 opened, held as a standing regression gate: does
the sliced :class:`~repro.lsm.compaction.LeveledPolicy` actually buy the
write-amplification reduction it exists for, without giving back batch
probe throughput?

The workload is a **sustained clustered ingest with interleaved probe
batches** — the regime where slicing pays. Keys arrive in moving
clusters (a time-series / log-structured pattern: each burst lands in a
narrow, advancing key band), so a level-0 run's span covers a thin
stripe of the keyspace. Full merge rewrites the entire accumulated
store on every compaction; leveled rewrites only the slices the stripe
overlaps. Probe batches are uncorrelated range-emptiness queries over
the whole universe, issued between ingest bursts exactly like the
serving path (each batch is also the deferred scheduler's drain slot —
compaction work happens where it would in production).

Gates enforced by the CI perf-smoke step (and recorded in
``BENCH_compaction.json`` either way):

* ``leveled entries_compacted < 0.6 x full-merge`` on the identical
  ingest (measured via the new ``IoStats`` write counters — this is a
  deterministic counter comparison, not a timing);
* leveled batch range-empty throughput ``>= 0.9 x`` full-merge
  (best-of-N timing on identical query batches; the sliced topology's
  extra runs must be paid for by the vectorised bounds skip);
* correctness: all three policies answer the full probe stream
  identically (they share one oracle-checked result).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Tuple

import numpy as np

import _common
from _common import SEED, register_report, timing_stats, write_bench_json
from repro.analysis.report import format_table
from repro.engine import ShardedEngine
from repro.lsm import LeveledPolicy

UNIVERSE = 2**32
# Floors are sized so the policies genuinely diverge even at the CI's
# REPRO_SCALE=0.5: enough flushes per shard for several compaction
# rounds, or the write-amp comparison degenerates to one shared merge.
N_BURSTS = max(16, int(24 * _common.SCALE))
BURST_KEYS = max(1_200, int(2_000 * _common.SCALE))
PROBE_BATCH = max(500, int(4_000 * _common.SCALE))
MEMTABLE = 512
FANOUT = 4
SLICE_TARGET = 1024
RANGE = 64
POLICIES = ("full", "tiered", "leveled")

#: Floors/ceilings enforced by the CI perf-smoke step.
WRITE_AMP_CEILING = 0.6   # leveled entries_compacted vs full-merge
THROUGHPUT_FLOOR = 0.9    # leveled probe q/s vs full-merge


def _policy(name: str):
    return LeveledPolicy(slice_target=SLICE_TARGET) if name == "leveled" else name


def _cluster_keys(rng: np.random.Generator, burst: int) -> np.ndarray:
    """One ingest burst: keys clustered in a narrow advancing band.

    The band walks the keyspace (think timestamps or log offsets with
    jitter): burst ``b`` draws from a window ``~2^24`` wide positioned
    at ``b``'s fraction of the universe, so consecutive level-0 runs
    overlap only a thin stripe of any sliced level.
    """
    band = UNIVERSE // (N_BURSTS + 2)
    base = band * burst
    return base + rng.integers(0, band, BURST_KEYS, dtype=np.uint64)


def _probe_bounds(rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    los = rng.integers(0, UNIVERSE - RANGE, PROBE_BATCH, dtype=np.uint64)
    return los, los + np.uint64(RANGE - 1)


@functools.lru_cache(maxsize=None)
def run_policy(policy: str) -> Dict[str, object]:
    """Drive the sustained ingest+probe workload under one policy."""
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=MEMTABLE,
        compaction_fanout=FANOUT,
        filter_factory=None,   # write-amp is a storage property; filters
        compaction=_policy(policy),  # only add timing noise here
    )
    rng = np.random.default_rng(SEED)
    verdicts: List[np.ndarray] = []
    for burst in range(N_BURSTS):
        for key in _cluster_keys(rng, burst):
            engine.put(int(key), b"v")
        # The between-batches slot: probes drain deferred steps first.
        los, his = _probe_bounds(rng)
        verdicts.append(engine.batch_range_empty(los, his))
    engine.flush_all()
    engine.drain_compactions()
    stats = engine.stats
    # Steady-state probe timing on the settled store, identical batches.
    t_rng = np.random.default_rng(SEED + 99)
    t_lo, t_hi = _probe_bounds(t_rng)
    timing = timing_stats(
        lambda: engine.batch_range_empty(t_lo, t_hi), ops=PROBE_BATCH, repeat=5
    )
    return {
        "policy": policy,
        "entries_flushed": stats.entries_flushed,
        "entries_compacted": stats.entries_compacted,
        "bytes_compacted": stats.bytes_compacted,
        "compaction_steps": stats.compactions,
        "write_amplification": stats.write_amplification,
        "probe_qps": timing["op_s"],
        "probe_p50_s": timing["p50_s"],
        "probe_p99_s": timing["p99_s"],
        "runs_final": engine.run_count,
        "live_keys": len(engine),
        "verdicts": np.concatenate(verdicts),
        "steady_verdicts": engine.batch_range_empty(t_lo, t_hi),
    }


@functools.lru_cache(maxsize=None)
def _report() -> Dict[str, Dict[str, object]]:
    cells = {policy: run_policy(policy) for policy in POLICIES}
    reference = cells["full"]
    for policy, cell in cells.items():
        assert bool(
            (cell["verdicts"] == reference["verdicts"]).all()
        ), f"{policy} diverged from full-merge on the probe stream"
        assert bool(
            (cell["steady_verdicts"] == reference["steady_verdicts"]).all()
        ), f"{policy} diverged on the settled store"
    rows = []
    for policy in POLICIES:
        cell = cells[policy]
        rows.append([
            policy,
            f"{cell['compaction_steps']}",
            f"{cell['entries_compacted']:,}",
            f"{cell['entries_compacted'] / max(1, reference['entries_compacted']):.2f}x",
            f"{cell['write_amplification']:.2f}",
            f"{cell['probe_qps']:,.0f}",
            f"{cell['runs_final']}",
        ])
    register_report(
        "compaction",
        format_table(
            ["policy", "steps", "entries compacted", "vs full", "write amp",
             "probe q/s", "runs"],
            rows,
            title=(
                f"Compaction policies on clustered sustained ingest "
                f"({N_BURSTS} bursts x {BURST_KEYS:,} keys, memtable "
                f"{MEMTABLE}, fanout {FANOUT}, slice {SLICE_TARGET}, "
                f"{PROBE_BATCH:,}-query batches)"
            ),
        ),
    )
    write_bench_json(
        "compaction",
        results={
            policy: {k: v for k, v in cell.items()
                     if not isinstance(v, np.ndarray)}
            for policy, cell in cells.items()
        },
        config={
            "n_bursts": N_BURSTS,
            "burst_keys": BURST_KEYS,
            "probe_batch": PROBE_BATCH,
            "memtable_limit": MEMTABLE,
            "fanout": FANOUT,
            "slice_target": SLICE_TARGET,
            "range_size": RANGE,
            "write_amp_ceiling": WRITE_AMP_CEILING,
            "throughput_floor": THROUGHPUT_FLOOR,
        },
    )
    return cells


def test_leveled_write_amp_beats_full_merge():
    """ISSUE 5 acceptance bar: on the sustained clustered ingest the
    sliced leveled policy must rewrite < 0.6x the entries full merge
    does — a deterministic counter gate, no timing involved."""
    cells = _report()
    ratio = (
        cells["leveled"]["entries_compacted"]
        / max(1, cells["full"]["entries_compacted"])
    )
    assert ratio < WRITE_AMP_CEILING, (
        f"leveled compacted {ratio:.2f}x of full-merge's entries "
        f"(ceiling {WRITE_AMP_CEILING}) — slicing is not bounding rewrites"
    )


def test_tiered_write_amp_beats_full_merge():
    """Tiered merges one level per step; it must also rewrite less than
    the monolithic full merge on sustained ingest (looser, sanity bar)."""
    cells = _report()
    assert (
        cells["tiered"]["entries_compacted"]
        < cells["full"]["entries_compacted"]
    )


def test_leveled_probe_throughput_within_10pct():
    """The other half of the acceptance bar: the sliced topology's extra
    runs must not cost batch probe throughput — the vectorised bounds
    skip keeps non-overlapping slices free. Best-of-5 on identical
    batches against the settled stores."""
    cells = _report()
    ratio = cells["leveled"]["probe_qps"] / cells["full"]["probe_qps"]
    assert ratio >= THROUGHPUT_FLOOR, (
        f"leveled probes at {ratio:.2f}x of full-merge throughput "
        f"(floor {THROUGHPUT_FLOOR}x)"
    )


def test_write_amp_is_measured_first_class():
    """The IoStats write counters behind the gate are self-consistent:
    every policy flushed the same user entries, and write_amplification
    is exactly (flushed + compacted) / flushed."""
    cells = _report()
    flushed = {cell["entries_flushed"] for cell in cells.values()}
    assert len(flushed) == 1, cells
    for cell in cells.values():
        expected = (
            (cell["entries_flushed"] + cell["entries_compacted"])
            / cell["entries_flushed"]
        )
        assert abs(cell["write_amplification"] - expected) < 1e-9
