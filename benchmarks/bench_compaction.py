"""Compaction-policy write-amplification + probe-throughput bench.

The question ISSUE 5 opened, held as a standing regression gate: does
the sliced :class:`~repro.lsm.compaction.LeveledPolicy` actually buy the
write-amplification reduction it exists for, without giving back batch
probe throughput?

The workload is a **sustained clustered ingest with interleaved probe
batches** — the regime where slicing pays. Keys arrive in moving
clusters (a time-series / log-structured pattern: each burst lands in a
narrow, advancing key band), so a level-0 run's span covers a thin
stripe of the keyspace. Full merge rewrites the entire accumulated
store on every compaction; leveled rewrites only the slices the stripe
overlaps. Probe batches are uncorrelated range-emptiness queries over
the whole universe, issued between ingest bursts exactly like the
serving path (each batch is also the deferred scheduler's drain slot —
compaction work happens where it would in production).

Gates enforced by the CI perf-smoke step (and recorded in
``BENCH_compaction.json`` either way):

* ``leveled entries_compacted < 0.6 x full-merge`` on the identical
  ingest (measured via the new ``IoStats`` write counters — this is a
  deterministic counter comparison, not a timing);
* leveled batch range-empty throughput ``>= 0.9 x`` full-merge
  (best-of-N timing on identical query batches; the sliced topology's
  extra runs must be paid for by the vectorised bounds skip);
* correctness: all three policies answer the full probe stream
  identically (they share one oracle-checked result).
"""

from __future__ import annotations

import functools
import time
from typing import Dict, List, Tuple

import numpy as np

import _common
from _common import (
    SEED, merge_bench_json, register_report, timing_stats, write_bench_json,
)
from repro.analysis.report import format_table
from repro.engine import ShardedEngine, TokenBucket
from repro.lsm import LeveledPolicy

UNIVERSE = 2**32
# Floors are sized so the policies genuinely diverge even at the CI's
# REPRO_SCALE=0.5: enough flushes per shard for several compaction
# rounds, or the write-amp comparison degenerates to one shared merge.
N_BURSTS = max(16, int(24 * _common.SCALE))
BURST_KEYS = max(1_200, int(2_000 * _common.SCALE))
PROBE_BATCH = max(500, int(4_000 * _common.SCALE))
MEMTABLE = 512
FANOUT = 4
SLICE_TARGET = 1024
RANGE = 64
POLICIES = ("full", "tiered", "leveled")

#: Floors/ceilings enforced by the CI perf-smoke step.
WRITE_AMP_CEILING = 0.6   # leveled entries_compacted vs full-merge
THROUGHPUT_FLOOR = 0.9    # leveled probe q/s vs full-merge


def _policy(name: str):
    return LeveledPolicy(slice_target=SLICE_TARGET) if name == "leveled" else name


def _cluster_keys(rng: np.random.Generator, burst: int) -> np.ndarray:
    """One ingest burst: keys clustered in a narrow advancing band.

    The band walks the keyspace (think timestamps or log offsets with
    jitter): burst ``b`` draws from a window ``~2^24`` wide positioned
    at ``b``'s fraction of the universe, so consecutive level-0 runs
    overlap only a thin stripe of any sliced level.
    """
    band = UNIVERSE // (N_BURSTS + 2)
    base = band * burst
    return base + rng.integers(0, band, BURST_KEYS, dtype=np.uint64)


def _probe_bounds(rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    los = rng.integers(0, UNIVERSE - RANGE, PROBE_BATCH, dtype=np.uint64)
    return los, los + np.uint64(RANGE - 1)


@functools.lru_cache(maxsize=None)
def run_policy(policy: str) -> Dict[str, object]:
    """Drive the sustained ingest+probe workload under one policy."""
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=MEMTABLE,
        compaction_fanout=FANOUT,
        filter_factory=None,   # write-amp is a storage property; filters
        compaction=_policy(policy),  # only add timing noise here
    )
    rng = np.random.default_rng(SEED)
    verdicts: List[np.ndarray] = []
    for burst in range(N_BURSTS):
        for key in _cluster_keys(rng, burst):
            engine.put(int(key), b"v")
        # The between-batches slot: probes drain deferred steps first.
        los, his = _probe_bounds(rng)
        verdicts.append(engine.batch_range_empty(los, his))
    engine.flush_all()
    engine.drain_compactions()
    stats = engine.stats
    # Steady-state probe timing on the settled store, identical batches.
    t_rng = np.random.default_rng(SEED + 99)
    t_lo, t_hi = _probe_bounds(t_rng)
    timing = timing_stats(
        lambda: engine.batch_range_empty(t_lo, t_hi), ops=PROBE_BATCH, repeat=5
    )
    return {
        "policy": policy,
        "entries_flushed": stats.entries_flushed,
        "entries_compacted": stats.entries_compacted,
        "bytes_compacted": stats.bytes_compacted,
        "compaction_steps": stats.compactions,
        "write_amplification": stats.write_amplification,
        "probe_qps": timing["op_s"],
        "probe_p50_s": timing["p50_s"],
        "probe_p99_s": timing["p99_s"],
        "runs_final": engine.run_count,
        "live_keys": len(engine),
        "verdicts": np.concatenate(verdicts),
        "steady_verdicts": engine.batch_range_empty(t_lo, t_hi),
    }


@functools.lru_cache(maxsize=None)
def _report() -> Dict[str, Dict[str, object]]:
    cells = {policy: run_policy(policy) for policy in POLICIES}
    reference = cells["full"]
    for policy, cell in cells.items():
        assert bool(
            (cell["verdicts"] == reference["verdicts"]).all()
        ), f"{policy} diverged from full-merge on the probe stream"
        assert bool(
            (cell["steady_verdicts"] == reference["steady_verdicts"]).all()
        ), f"{policy} diverged on the settled store"
    rows = []
    for policy in POLICIES:
        cell = cells[policy]
        rows.append([
            policy,
            f"{cell['compaction_steps']}",
            f"{cell['entries_compacted']:,}",
            f"{cell['entries_compacted'] / max(1, reference['entries_compacted']):.2f}x",
            f"{cell['write_amplification']:.2f}",
            f"{cell['probe_qps']:,.0f}",
            f"{cell['runs_final']}",
        ])
    register_report(
        "compaction",
        format_table(
            ["policy", "steps", "entries compacted", "vs full", "write amp",
             "probe q/s", "runs"],
            rows,
            title=(
                f"Compaction policies on clustered sustained ingest "
                f"({N_BURSTS} bursts x {BURST_KEYS:,} keys, memtable "
                f"{MEMTABLE}, fanout {FANOUT}, slice {SLICE_TARGET}, "
                f"{PROBE_BATCH:,}-query batches)"
            ),
        ),
    )
    write_bench_json(
        "compaction",
        results={
            policy: {k: v for k, v in cell.items()
                     if not isinstance(v, np.ndarray)}
            for policy, cell in cells.items()
        },
        config={
            "n_bursts": N_BURSTS,
            "burst_keys": BURST_KEYS,
            "probe_batch": PROBE_BATCH,
            "memtable_limit": MEMTABLE,
            "fanout": FANOUT,
            "slice_target": SLICE_TARGET,
            "range_size": RANGE,
            "write_amp_ceiling": WRITE_AMP_CEILING,
            "throughput_floor": THROUGHPUT_FLOOR,
        },
    )
    return cells


def test_leveled_write_amp_beats_full_merge():
    """ISSUE 5 acceptance bar: on the sustained clustered ingest the
    sliced leveled policy must rewrite < 0.6x the entries full merge
    does — a deterministic counter gate, no timing involved."""
    cells = _report()
    ratio = (
        cells["leveled"]["entries_compacted"]
        / max(1, cells["full"]["entries_compacted"])
    )
    assert ratio < WRITE_AMP_CEILING, (
        f"leveled compacted {ratio:.2f}x of full-merge's entries "
        f"(ceiling {WRITE_AMP_CEILING}) — slicing is not bounding rewrites"
    )


def test_tiered_write_amp_beats_full_merge():
    """Tiered merges one level per step; it must also rewrite less than
    the monolithic full merge on sustained ingest (looser, sanity bar)."""
    cells = _report()
    assert (
        cells["tiered"]["entries_compacted"]
        < cells["full"]["entries_compacted"]
    )


def test_leveled_probe_throughput_within_10pct():
    """The other half of the acceptance bar: the sliced topology's extra
    runs must not cost batch probe throughput — the vectorised bounds
    skip keeps non-overlapping slices free. Best-of-5 on identical
    batches against the settled stores."""
    cells = _report()
    ratio = cells["leveled"]["probe_qps"] / cells["full"]["probe_qps"]
    assert ratio >= THROUGHPUT_FLOOR, (
        f"leveled probes at {ratio:.2f}x of full-merge throughput "
        f"(floor {THROUGHPUT_FLOOR}x)"
    )


def test_write_amp_is_measured_first_class():
    """The IoStats write counters behind the gate are self-consistent:
    every policy flushed the same user entries, and write_amplification
    is exactly (flushed + compacted) / flushed."""
    cells = _report()
    flushed = {cell["entries_flushed"] for cell in cells.values()}
    assert len(flushed) == 1, cells
    for cell in cells.values():
        expected = (
            (cell["entries_flushed"] + cell["entries_compacted"])
            / cell["entries_flushed"]
        )
        assert abs(cell["write_amplification"] - expected) < 1e-9


# ----------------------------------------------------------------------
# ISSUE 10: deep leveled tree (L2+) under sustained ingest
# ----------------------------------------------------------------------
# A longer, finer-grained ingest than the cell above: many small flushes
# over an accumulating store is the regime where full merge's rewrite
# cost grows with the store while a budgeted deep tree's grows with its
# (logarithmic) depth. Probe batches interleave with ingest exactly as
# in serving; compaction drains between them like the service's
# background worker, bounded by the rate limiter — so the timed probes
# see the topology the policy and its throttling actually leave behind
# (deferred work = extra live runs to check).
SUSTAIN_BURSTS = max(64, int(96 * _common.SCALE))
SUSTAIN_KEYS = max(400, int(600 * _common.SCALE))
SUSTAIN_PROBES = max(512, int(2_000 * _common.SCALE))
SUSTAIN_MEMTABLE = 128
SUSTAIN_SLICE = 512
DEEP_LEVEL_FANOUT = 4
DEEP_L1_BUDGET = 1024
#: The deep cell's rate limiter runs on a **logical clock**: time
#: advances with ingest progress (``keys_put / INGEST_KEYS_PER_S``),
#: not the host's wall clock. A bench replays hours of arrivals in
#: seconds, so a wall-clock bucket either never refills (one deferred
#: cascade freezes compaction for the whole run) or never throttles;
#: modelling arrival time makes the limiter's behaviour — and the gate
#: below — deterministic and host-speed independent.
INGEST_KEYS_PER_S = 100_000.0
#: Entries/logical-second of compaction the limiter admits. Sized above
#: steady-state rewrite demand (so the tree never falls behind and runs
#: never pile up) but with a small burst, so a multi-level cascade is
#: spread across several serving slots instead of monopolising one.
DEEP_COMPACTION_RATE = 500_000.0
DEEP_COMPACTION_BURST = 2_000.0

#: ISSUE 10 gates.
DEEP_WRITE_AMP_CEILING = 0.6   # deep entries_compacted vs full-merge
DEEP_P99_CEILING = 1.1         # deep ingest-time probe p99 vs leveled (PR 5)


def _sustain_policy(name: str):
    if name == "leveled":
        return LeveledPolicy(slice_target=SUSTAIN_SLICE)
    if name == "deep":
        return LeveledPolicy(
            slice_target=SUSTAIN_SLICE,
            level_fanout=DEEP_LEVEL_FANOUT,
            l1_budget=DEEP_L1_BUDGET,
        )
    return name


def _sustain_cluster(rng: np.random.Generator, burst: int) -> np.ndarray:
    band = UNIVERSE // (SUSTAIN_BURSTS + 2)
    base = band * burst
    return base + rng.integers(0, band, SUSTAIN_KEYS, dtype=np.uint64)


#: Ingest passes per cell. Everything in a pass is deterministic — the
#: seeded workload, and the limiter because it runs on the logical
#: clock — so slot ``i`` does identical probe + compaction work in
#: every pass; the elementwise minimum over passes is the usual
#: best-of-N de-noising, applied per slot so structural spikes survive
#: while host hiccups (one slow sample flips a 64-sample p99) do not.
SUSTAIN_PASSES = 3


def _sustain_pass(policy: str):
    """One full ingest pass; returns (slot times, verdicts, engine)."""
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=SUSTAIN_MEMTABLE,
        compaction_fanout=FANOUT,
        filter_factory=None,
        compaction=_sustain_policy(policy),
    )
    keys_put = [0]
    if policy == "deep":
        engine.scheduler.set_rate_limiter(TokenBucket(
            DEEP_COMPACTION_RATE,
            burst=DEEP_COMPACTION_BURST,
            clock=lambda: keys_put[0] / INGEST_KEYS_PER_S,
        ))
    rng = np.random.default_rng(SEED + 7)
    verdicts: List[np.ndarray] = []
    slot_times: List[float] = []
    for burst in range(SUSTAIN_BURSTS):
        for key in _sustain_cluster(rng, burst):
            engine.put(int(key), b"v")
            keys_put[0] += 1
        # Compaction happens here, between serving, exactly as the
        # service's background worker would run it — untimed, but
        # bounded by the rate limiter, so work it defers stays visible
        # to the *timed* probes as extra runs to check. What the gate
        # measures is the serving-path cost of the topology the policy
        # (and its throttling) actually leaves behind.
        engine.drain_compactions()
        los = rng.integers(0, UNIVERSE - RANGE, SUSTAIN_PROBES, dtype=np.uint64)
        his = los + np.uint64(RANGE - 1)
        start = time.perf_counter()
        verdicts.append(engine.batch_range_empty(los, his))
        slot_times.append(time.perf_counter() - start)
    return np.asarray(slot_times), np.concatenate(verdicts), engine


def _sustain_cell(policy: str, passes) -> Dict[str, object]:
    """Assemble one cell from its (interleaved) ingest passes."""
    slot_times = np.minimum.reduce([times for times, _, _ in passes])
    verdicts = passes[0][1]
    for _, other, _ in passes[1:]:
        assert bool((other == verdicts).all()), "non-deterministic pass"
    engine = passes[0][2]
    throttles = engine.scheduler.compactions_throttled
    # Settle completely (untimed, unthrottled) so the write-amp counter
    # reflects the cascade's full cost and the final topology is stable.
    engine.scheduler.set_rate_limiter(None)
    engine.flush_all()
    engine.drain_compactions()
    stats = engine.stats
    levels = engine.level_stats()
    return {
        "policy": policy,
        "entries_flushed": stats.entries_flushed,
        "entries_compacted": stats.entries_compacted,
        "write_amplification": stats.write_amplification,
        "compaction_steps": stats.compactions,
        "compaction_throttles": throttles,
        "slot_p50_s": float(np.percentile(slot_times, 50)),
        "slot_p99_s": float(np.percentile(slot_times, 99)),
        "depth": len(levels) - 1,
        "levels": levels,
        "runs_final": engine.run_count,
        "live_keys": len(engine),
        "verdicts": verdicts,
    }


@functools.lru_cache(maxsize=None)
def _sustain_report() -> Dict[str, Dict[str, object]]:
    # Passes interleave across policies (pass 0 of every cell, then pass
    # 1, ...) so slow process-wide drift — thermal throttling, allocator
    # growth — lands on all cells equally instead of taxing whichever
    # cell happens to run last.
    policies = ("full", "leveled", "deep")
    passes: Dict[str, list] = {p: [] for p in policies}
    for _ in range(SUSTAIN_PASSES):
        for p in policies:
            passes[p].append(_sustain_pass(p))
    cells = {p: _sustain_cell(p, passes[p]) for p in policies}
    oracle = cells["full"]
    for policy, cell in cells.items():
        assert bool(
            (cell["verdicts"] == oracle["verdicts"]).all()
        ), f"{policy} diverged from the full-merge oracle"
    rows = [
        [
            p,
            f"{cell['entries_compacted']:,}",
            f"{cell['entries_compacted'] / max(1, oracle['entries_compacted']):.2f}x",
            f"{cell['write_amplification']:.2f}",
            f"{cell['slot_p99_s'] * 1e3:.1f}",
            f"{cell['depth']}",
            f"{cell['compaction_throttles']}",
        ]
        for p, cell in cells.items()
    ]
    register_report(
        "storage_sustained",
        format_table(
            ["policy", "entries compacted", "vs full", "write amp",
             "slot p99 (ms)", "depth", "throttles"],
            rows,
            title=(
                f"Deep leveled tree under sustained ingest "
                f"({SUSTAIN_BURSTS} bursts x {SUSTAIN_KEYS:,} keys, "
                f"memtable {SUSTAIN_MEMTABLE}, slice {SUSTAIN_SLICE}, "
                f"l1 budget {DEEP_L1_BUDGET} x{DEEP_LEVEL_FANOUT}, "
                f"rate {DEEP_COMPACTION_RATE:,.0f}/s logical)"
            ),
        ),
    )
    merge_bench_json(
        "storage",
        section="sustained_ingest",
        results={
            p: {k: v for k, v in cell.items() if not isinstance(v, np.ndarray)}
            for p, cell in cells.items()
        },
        config={
            "bursts": SUSTAIN_BURSTS,
            "burst_keys": SUSTAIN_KEYS,
            "probe_batch": SUSTAIN_PROBES,
            "memtable_limit": SUSTAIN_MEMTABLE,
            "fanout": FANOUT,
            "slice_target": SUSTAIN_SLICE,
            "level_fanout": DEEP_LEVEL_FANOUT,
            "l1_budget": DEEP_L1_BUDGET,
            "compaction_rate": DEEP_COMPACTION_RATE,
            "compaction_burst": DEEP_COMPACTION_BURST,
            "ingest_keys_per_s": INGEST_KEYS_PER_S,
            "write_amp_ceiling": DEEP_WRITE_AMP_CEILING,
            "p99_ceiling": DEEP_P99_CEILING,
        },
    )
    return cells


def test_deep_leveled_write_amp_beats_full_merge():
    """ISSUE 10 acceptance bar: on the sustained ingest the deep (L2+)
    leveled tree must rewrite <= 0.6x the entries full merge does, even
    counting every cascading push-down. Deterministic counter gate."""
    cells = _sustain_report()
    ratio = (
        cells["deep"]["entries_compacted"]
        / max(1, cells["full"]["entries_compacted"])
    )
    assert ratio <= DEEP_WRITE_AMP_CEILING, (
        f"deep leveled compacted {ratio:.2f}x of full-merge's entries "
        f"(ceiling {DEEP_WRITE_AMP_CEILING}) — budget push-downs are "
        "rewriting too much"
    )


def test_deep_leveled_grows_levels():
    """The write-amp number is only meaningful if the tree actually went
    deep: the settled store must hold data on L2 or beyond."""
    cells = _sustain_report()
    assert cells["deep"]["depth"] >= 2, cells["deep"]["levels"]
    deep_rows = [
        row for row in cells["deep"]["levels"]
        if row["level"] >= 2 and row["entries"] > 0
    ]
    assert deep_rows, cells["deep"]["levels"]


def test_deep_leveled_probe_p99_holds_under_ingest():
    """ISSUE 10 acceptance bar: ingest-time probe p99 no worse than
    1.1x the PR 5 single-level leveled baseline. The deep tree probes
    more levels, and whatever its rate limiter defers is still live as
    extra L0 runs — both costs land in the timed probes, and together
    they must stay within 10% of the flat leveled topology."""
    cells = _sustain_report()
    ratio = cells["deep"]["slot_p99_s"] / cells["leveled"]["slot_p99_s"]
    assert ratio <= DEEP_P99_CEILING, (
        f"deep leveled ingest-time probe p99 is {ratio:.2f}x the leveled "
        f"baseline (ceiling {DEEP_P99_CEILING}x)"
    )
