"""Figure 3 (and the Figure 1 teaser): robustness under correlated queries.

Paper setup: Uniform dataset, Correlated workload with degree D swept
from 0 to 1, space budget fixed at 20 bits/key, three range sizes (point
2^0, small 2^5, large 2^10). For every filter the figure reports FPR
(top row) and query time (bottom row).

Expected shape (paper §6.2): Grafite and Rosetta flat in D (robust),
Grafite ~2 orders of magnitude better FPR than Rosetta and much faster;
REncoder robust only for large ranges; SuRF / SNARF / Bucketing /
REncoderSS collapse to FPR ~1 beyond D ~ 0.4; Proteus and REncoderSE
degrade but stay below 1 thanks to auto-tuning.
"""

from __future__ import annotations

import functools

import pytest

import _common
from _common import (
    N_QUERIES,
    RANGE_SIZES,
    SEED,
    UNIVERSE,
    dataset,
    get_filter,
    register_report,
    run_query_batch,
)
from repro.analysis.fpr import measure_fpr
from repro.analysis.report import format_series
from repro.analysis.timing import time_queries
from repro.workloads.queries import correlated_queries

BITS_PER_KEY = 20
DEGREES = (0.0, 0.25, 0.5, 0.75, 1.0)
FILTERS = (
    "Grafite", "Bucketing", "SNARF", "SuRF", "Proteus",
    "Rosetta", "REncoder", "REncoderSS", "REncoderSE",
)
#: Figure 1 plots the subset below on small ranges.
FIG1_FILTERS = ("Grafite", "SNARF", "SuRF", "Proteus", "Rosetta", "REncoder")


@functools.lru_cache(maxsize=None)
def correlated_batch(range_size: int, degree: float):
    keys = dataset("uniform")
    return tuple(
        correlated_queries(
            keys, N_QUERIES, range_size, UNIVERSE,
            correlation_degree=degree, seed=SEED + int(degree * 100),
        )
    )


@functools.lru_cache(maxsize=None)
def compute_figure3():
    """FPR and query-time grids: {range_label: {filter: [per-degree ...]}}."""
    fpr_grid = {}
    time_grid = {}
    for label, range_size in RANGE_SIZES.items():
        fpr_grid[label] = {name: [] for name in FILTERS}
        time_grid[label] = {name: [] for name in FILTERS}
        for degree in DEGREES:
            queries = correlated_batch(range_size, degree)
            for name in FILTERS:
                filt = get_filter(
                    name, "uniform", BITS_PER_KEY, range_size,
                    workload_kind="correlated", correlation=degree,
                )
                fpr_grid[label][name].append(measure_fpr(filt, queries).fpr)
                time_grid[label][name].append(
                    time_queries(filt, queries).ns_per_op
                )
    return fpr_grid, time_grid


def _report():
    fpr_grid, time_grid = compute_figure3()
    sections = []
    for label in RANGE_SIZES:
        sections.append(
            format_series(
                "corr D",
                list(DEGREES),
                [(name, [f"{v:.2e}" for v in fpr_grid[label][name]]) for name in FILTERS],
                title=f"Figure 3 — FPR vs correlation degree ({label} ranges, "
                f"{BITS_PER_KEY} bits/key)",
            )
        )
        sections.append(
            format_series(
                "corr D",
                list(DEGREES),
                [
                    (name, [f"{v:,.0f}" for v in time_grid[label][name]])
                    for name in FILTERS
                ],
                title=f"Figure 3 — query time [ns] vs correlation degree ({label} ranges)",
            )
        )
    register_report("fig3_robustness", "\n\n".join(sections))

    fig1 = []
    fpr_small = fpr_grid["small"]
    time_small = time_grid["small"]
    fig1.append(
        format_series(
            "corr D",
            list(DEGREES),
            [(n, [f"{v:.2e}" for v in fpr_small[n]]) for n in FIG1_FILTERS],
            title="Figure 1 (teaser) — FPR vs correlation degree (small ranges)",
        )
    )
    fig1.append(
        format_series(
            "corr D",
            list(DEGREES),
            [(n, [f"{v:,.0f}" for v in time_small[n]]) for n in FIG1_FILTERS],
            title="Figure 1 (teaser) — query time [ns/query]",
        )
    )
    register_report("fig1_teaser", "\n\n".join(fig1))
    return fpr_grid, time_grid


def test_fig3_shapes():
    """Assert the qualitative claims of §6.2 hold at reproduction scale."""
    fpr_grid, _ = _report()
    for label, range_size in RANGE_SIZES.items():
        grafite = fpr_grid[label]["Grafite"]
        rosetta = fpr_grid[label]["Rosetta"]
        # Robustness: Grafite stays within its Corollary 3.5 bound
        # (ell / 2^(B-2)) up to small-sample noise at every degree D.
        bound = range_size / 2 ** (BITS_PER_KEY - 2)
        noise = 3.0 / N_QUERIES
        assert max(grafite) <= 3 * bound + noise, (label, grafite)
        # Grafite dominates Rosetta at equal space.
        assert sum(grafite) <= sum(rosetta) + noise
    # Heuristics collapse at high correlation on small ranges.
    for heuristic in ("SNARF", "SuRF", "Bucketing"):
        assert fpr_grid["small"][heuristic][-1] > 0.5, heuristic


@pytest.mark.parametrize("name", ("Grafite", "Rosetta", "SNARF", "SuRF"))
def test_fig3_query_benchmark(benchmark, name):
    """pytest-benchmark timing of the correlated query batch (D=0.75)."""
    queries = correlated_batch(RANGE_SIZES["small"], 0.75)
    filt = get_filter(
        name, "uniform", BITS_PER_KEY, RANGE_SIZES["small"],
        workload_kind="correlated", correlation=0.75,
    )
    benchmark(run_query_batch, filt, queries)
