"""Figure 7: construction time per key as the dataset grows.

Paper setup (§6.6): Uniform keys, n swept 10^5..10^8 (here 10^3..~10^4.5,
scaled for pure Python), construction time averaged over space budgets
and reported *per key*; Rosetta's and Proteus's bars include the tuning
pass over a sample workload, shown separately.

Expected shape: Grafite and Bucketing construct in linear time (flat
ns/key curves) and are the fastest of their groups (paper: Grafite
6.7-10.3x faster than Rosetta, 3.8-7.9x than REncoder; Bucketing 1.8-30x
faster than the other heuristics). §6.6 also reports multi-threaded sort
speedups (28.0s -> 14.0s with 8 threads); Python's GIL makes that
unreproducible, so instead we report the sort share of Grafite's
construction — the quantity the parallel sort would shrink.
"""

from __future__ import annotations

import functools
import time

import numpy as np
import pytest

import _common
from _common import (
    SEED,
    UNIVERSE,
    make_config,
    register_report,
    sample_queries_for,
)
from repro.analysis.harness import build_filter
from repro.analysis.report import format_series, format_table
from repro.core.hashing import LocalityPreservingHash
from repro.workloads.datasets import uniform

FILTERS = (
    "Grafite", "Bucketing", "SNARF", "SuRF", "Proteus", "Rosetta", "REncoder",
)
SIZES = tuple(
    max(200, int(n * _common.SCALE)) for n in (1_000, 3_000, 10_000, 30_000)
)
BUDGETS = (12, 20)
RANGE_SIZE = 32


@functools.lru_cache(maxsize=None)
def compute_figure7():
    """ns-per-key construction times: {filter: [per-n ...]}, tuning included."""
    results = {name: [] for name in FILTERS}
    tuning_share = {name: [] for name in ("Rosetta", "Proteus")}
    for n in SIZES:
        keys = uniform(n, UNIVERSE, seed=SEED)
        sample = sample_queries_for(keys, RANGE_SIZE, "uncorrelated")
        for name in FILTERS:
            per_budget = []
            for bpk in BUDGETS:
                cfg = make_config(keys, bpk, RANGE_SIZE, sample)
                start = time.perf_counter()
                build_filter(name, cfg)
                per_budget.append((time.perf_counter() - start) / n * 1e9)
            results[name].append(sum(per_budget) / len(per_budget))
        # Tuning overhead: rebuild the self-tuning filters without a sample
        # and report the difference as the (light-coloured) tuning share.
        for name in tuning_share:
            cfg_plain = make_config(keys, BUDGETS[-1], RANGE_SIZE, ())
            if name == "Proteus":
                # Proteus cannot build without a sample; fix its design to
                # isolate pure construction.
                from repro.filters.proteus import Proteus

                start = time.perf_counter()
                Proteus(keys, UNIVERSE, bits_per_key=BUDGETS[-1], l1=16, l2=32)
                plain = (time.perf_counter() - start) / n * 1e9
            else:
                start = time.perf_counter()
                build_filter(name, cfg_plain)
                plain = (time.perf_counter() - start) / n * 1e9
            total = results[name][-1]
            tuning_share[name].append(max(0.0, 1.0 - plain / total) if total else 0.0)
    return results, tuning_share


def sort_share_of_grafite_construction(n: int = 20_000) -> float:
    """Fraction of Grafite's build spent sorting hash codes (§6.6 proxy)."""
    keys = uniform(max(1000, int(n * _common.SCALE)), UNIVERSE, seed=SEED)
    hasher = LocalityPreservingHash(len(keys) * 32 * 4, domain=UNIVERSE, seed=SEED)
    start = time.perf_counter()
    codes = hasher.hash_many(keys)
    hash_time = time.perf_counter() - start
    start = time.perf_counter()
    np.unique(codes)
    sort_time = time.perf_counter() - start
    return sort_time / (sort_time + hash_time)


def _report():
    results, tuning_share = compute_figure7()
    sections = [
        format_series(
            "n keys",
            list(SIZES),
            [(name, [f"{v:,.0f}" for v in results[name]]) for name in FILTERS],
            title="Figure 7 — construction time [ns/key] vs number of keys",
        ),
        format_table(
            ["filter"] + [str(n) for n in SIZES],
            [
                [name] + [f"{v * 100:.0f}%" for v in tuning_share[name]]
                for name in tuning_share
            ],
            title="Figure 7 — share of construction spent auto-tuning",
        ),
    ]
    share = sort_share_of_grafite_construction()
    sections.append(
        f"§6.6 sort-parallelism proxy: {share * 100:.0f}% of Grafite's "
        "construction is the code sort (the part the paper parallelises "
        "to get its 1.5-2.0x multi-thread speedups)."
    )
    register_report("fig7_construction", "\n\n".join(sections))
    return results, tuning_share


def test_fig7_shapes():
    results, _ = _report()
    # Construction is near-linear for Grafite and Bucketing: ns/key may
    # not grow by more than ~3x across a 30x increase in n (log-factor
    # from sorting plus cache effects allowed).
    for name in ("Grafite", "Bucketing"):
        series = results[name]
        assert series[-1] <= 3.5 * series[0] + 500, (name, series)
    # Grafite constructs faster than the other robust filters.
    assert results["Grafite"][-1] < results["Rosetta"][-1]
    assert results["Grafite"][-1] < results["REncoder"][-1]
    # Bucketing sits at the front of the heuristic pack (paper: fastest;
    # at our scale SNARF's fully-vectorised build can tie it, so allow a
    # whisker while keeping the wide SuRF/Proteus gaps strict).
    for rival in ("SNARF", "SuRF", "Proteus"):
        assert results["Bucketing"][-1] < 1.25 * results[rival][-1], rival
    assert results["Bucketing"][-1] < results["SuRF"][-1]
    assert results["Bucketing"][-1] < results["Proteus"][-1]


def test_fig7_grafite_construction_benchmark(benchmark):
    keys = uniform(SIZES[-1], UNIVERSE, seed=SEED)
    cfg = make_config(keys, 20, RANGE_SIZE, ())
    benchmark(build_filter, "Grafite", cfg)


def test_fig7_bucketing_construction_benchmark(benchmark):
    keys = uniform(SIZES[-1], UNIVERSE, seed=SEED)
    cfg = make_config(keys, 20, RANGE_SIZE, ())
    benchmark(build_filter, "Bucketing", cfg)
