"""Figure 6: query time on *non-empty* queries vs space budget.

Paper setup (§6.5): Uniform keys; ranges ``[x, x + L - 1]`` built by
picking a key ``k`` and a left endpoint uniformly in ``[k - L + 1, k]``,
so every query intersects the dataset; three range sizes; time per query
plotted against the space budget on a log axis.

Expected shape: Bucketing gives the fastest non-empty queries among
heuristics (paper: up to 3 orders of magnitude), Grafite the fastest
among robust filters (1 order vs REncoder, 2 vs Rosetta); Rosetta and
Proteus reach tens of microseconds per query — "comparable to the access
latency of an SSD", the paper's argument that a filter can cost more CPU
than the I/O it saves.
"""

from __future__ import annotations

import functools

import pytest

import _common
from _common import (
    BPK_SWEEP,
    RANGE_SIZES,
    get_filter,
    register_report,
    run_query_batch,
    workload,
)
from repro.analysis.timing import time_queries
from repro.analysis.report import format_series

FILTERS = (
    "Grafite", "Bucketing", "SNARF", "SuRF", "Proteus",
    "Rosetta", "REncoder", "REncoderSS", "REncoderSE",
)


@functools.lru_cache(maxsize=None)
def compute_figure6():
    """times[range_label][filter] = per-budget ns/query list."""
    times = {}
    for range_label, range_size in RANGE_SIZES.items():
        keys, queries = workload("uniform", "nonempty", range_size)
        times[range_label] = {name: [] for name in FILTERS}
        for bpk in BPK_SWEEP:
            for name in FILTERS:
                filt = get_filter(
                    name, "uniform", bpk, range_size,
                    workload_kind="uncorrelated", keys=keys,
                )
                times[range_label][name].append(
                    time_queries(filt, queries).ns_per_op
                )
    return times


def _report():
    times = compute_figure6()
    sections = []
    for range_label in RANGE_SIZES:
        sections.append(
            format_series(
                "bits/key",
                list(BPK_SWEEP),
                [
                    (n, [f"{v:,.0f}" for v in times[range_label][n]])
                    for n in FILTERS
                ],
                title=f"Figure 6 — non-empty queries, {range_label} ranges: ns/query vs space",
            )
        )
    register_report("fig6_nonempty", "\n\n".join(sections))
    return times


def test_fig6_shapes():
    """§6.5 claims that survive the C++ -> Python constant change."""
    times = _report()

    def avg(range_label, name):
        series = times[range_label][name]
        return sum(series) / len(series)

    for range_label in RANGE_SIZES:
        # Bucketing remains far faster than SNARF on every range size.
        assert avg(range_label, "Bucketing") < avg(range_label, "SNARF")
    # Grafite beats Rosetta wherever Rosetta actually recurses (range
    # queries). On point queries Rosetta degenerates to a single Bloom
    # probe, which interpreted Python prices below an Elias-Fano
    # predecessor — a language constant the paper's C++ does not have.
    for range_label in ("small", "large"):
        assert avg(range_label, "Grafite") < avg(range_label, "Rosetta")
    # Rosetta's non-empty large-range queries are its worst case
    # (recursive doubting down to the leaf level on true positives).
    assert avg("large", "Rosetta") > avg("point", "Rosetta")


@pytest.mark.parametrize("name", ("Grafite", "Bucketing", "Rosetta"))
def test_fig6_query_benchmark(benchmark, name):
    keys, queries = workload("uniform", "nonempty", RANGE_SIZES["small"])
    filt = get_filter(
        name, "uniform", 20, RANGE_SIZES["small"],
        workload_kind="uncorrelated", keys=keys,
    )
    benchmark(run_query_batch, filt, queries)
