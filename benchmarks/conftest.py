"""Benchmark-session plumbing: print registered figure reports at the end."""

from __future__ import annotations

import _common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo every figure/table produced during the run to the terminal."""
    if not _common.REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line(
        "Reproduced paper figures/tables (also saved under benchmarks/results/)"
    )
    terminalreporter.write_line("=" * 78)
    for name in sorted(_common.REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in _common.REPORTS[name].splitlines():
            terminalreporter.write_line(line)
