"""Engine throughput: batch probes vs. per-query loops, across shards.

The engine exists to serve probe traffic at throughput, so this bench
answers the two sizing questions an operator would ask:

* how do queries/sec scale with the **shard count** (routing cost vs.
  smaller per-shard runs), and
* what does the **batch size** buy — the vectorised Grafite path
  amortises python/dispatch overhead over the whole batch, so
  ``batch_range_empty`` should beat a loop of scalar ``range_empty``
  calls by a growing factor (the acceptance bar is >= 3x at a 10k
  batch).

The store is bulk-loaded once per shard count, flushed, and probed with
uncorrelated ranges (§6.1's workload), which are mostly empty — the
regime where filters, not disk reads, dominate the cost.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

import _common
from _common import SEED, UNIVERSE, register_report, timing_stats, write_bench_json
from repro.analysis.report import format_table
from repro.core.grafite import Grafite
from repro.engine import ShardedEngine
from repro.workloads.datasets import uniform
from repro.workloads.queries import uncorrelated_queries

N_KEYS = max(2_000, int(50_000 * _common.SCALE))
BIG_BATCH = max(1_000, int(10_000 * _common.SCALE))
SHARD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (256, 2_048, BIG_BATCH)
RANGE = 32
BITS_PER_KEY = 16


def _factory(keys, universe):
    return Grafite(
        keys, universe, bits_per_key=BITS_PER_KEY, max_range_size=RANGE, seed=SEED
    )


@functools.lru_cache(maxsize=None)
def build_engine(num_shards: int) -> ShardedEngine:
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=num_shards,
        memtable_limit=max(512, N_KEYS // 8),
        compaction_fanout=4,
        filter_factory=_factory,
    )
    arrival = keys[np.random.default_rng(SEED + 1).permutation(keys.size)]
    for key in arrival:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return engine


@functools.lru_cache(maxsize=None)
def probe_bounds(batch_size: int):
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    queries = uncorrelated_queries(
        batch_size, RANGE, UNIVERSE, keys=keys, seed=SEED + 2
    )
    los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
    his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
    return los, his


@functools.lru_cache(maxsize=None)
def throughput_cell(num_shards: int, batch_size: int) -> dict:
    """Queries/sec for the batch path and the per-query loop."""
    engine = build_engine(num_shards)
    los, his = probe_bounds(batch_size)
    batch_stats = timing_stats(
        lambda: engine.batch_range_empty(los, his), ops=batch_size, repeat=3
    )
    loop_stats = timing_stats(
        lambda: [engine.range_empty(int(lo), int(hi)) for lo, hi in zip(los, his)],
        ops=batch_size,
        repeat=3,
    )
    batch = engine.batch_range_empty(los, his)
    loop = np.asarray(
        [engine.range_empty(int(lo), int(hi)) for lo, hi in zip(los, his)]
    )
    assert bool((batch == loop).all()), "batch path must agree with the scalar loop"
    return {
        "num_shards": num_shards,
        "batch_size": batch_size,
        "batch_qps": batch_stats["op_s"],
        "loop_qps": loop_stats["op_s"],
        "batch_p50_s": batch_stats["p50_s"],
        "batch_p99_s": batch_stats["p99_s"],
        "speedup": batch_stats["op_s"] / loop_stats["op_s"],
        "empty_fraction": float(batch.mean()),
    }


def _report():
    rows = []
    cells = []
    for num_shards in SHARD_COUNTS:
        for batch_size in BATCH_SIZES:
            cell = throughput_cell(num_shards, batch_size)
            cells.append(cell)
            rows.append(
                [
                    num_shards,
                    f"{batch_size:,}",
                    f"{cell['batch_qps']:,.0f}",
                    f"{cell['loop_qps']:,.0f}",
                    f"{cell['speedup']:.1f}x",
                    f"{cell['empty_fraction']:.3f}",
                ]
            )
    register_report(
        "engine_throughput",
        format_table(
            ["shards", "batch size", "batch q/s", "loop q/s", "speedup", "empty frac"],
            rows,
            title=(
                f"ShardedEngine emptiness probes ({N_KEYS:,} keys, Grafite "
                f"{BITS_PER_KEY} bpk, range {RANGE})"
            ),
        ),
    )
    write_bench_json(
        "engine_throughput",
        results=cells,
        config={
            "n_keys": N_KEYS,
            "bits_per_key": BITS_PER_KEY,
            "range_size": RANGE,
            "shard_counts": list(SHARD_COUNTS),
            "batch_sizes": list(BATCH_SIZES),
        },
    )


def test_vectorised_batch_beats_per_query_loop():
    """Acceptance bar: >= 3x over the scalar loop at the 10k batch size."""
    _report()
    for num_shards in SHARD_COUNTS:
        cell = throughput_cell(num_shards, BIG_BATCH)
        assert cell["speedup"] >= 3.0, (num_shards, cell)


def test_sharding_keeps_batch_path_correct():
    """Routing must not change answers: 1-shard and 8-shard engines agree."""
    los, his = probe_bounds(BATCH_SIZES[0])
    single = build_engine(1).batch_range_empty(los, his)
    sharded = build_engine(8).batch_range_empty(los, his)
    assert bool((single == sharded).all())


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_benchmark_batch_probes(benchmark, num_shards):
    engine = build_engine(num_shards)
    los, his = probe_bounds(BATCH_SIZES[1])
    benchmark(lambda: engine.batch_range_empty(los, his))
