"""Chaos bench: goodput and verdict integrity under injected faults.

The robustness subsystem's contract, measured: with a seeded
:class:`~repro.faults.FaultPlan` injecting **>= 10% connection resets**
(plus fragmentation and stalls) between the load generator and a real
loopback server, bounded client retries must preserve most of the
goodput — and not one answered query may differ from the un-proxied
service. A disk cell drives checkpoints through torn writes and EIO and
requires every acknowledged write back after the crash, including after
a corrupted newest epoch forces the retained last-good rollback.

Gates enforced by the CI chaos step (recorded in ``BENCH_faults.json``
either way):

* **goodput under resets**: the chaos cell completes at least
  :data:`GOODPUT_FLOOR` of its requests despite the storm (the clean
  cell is the reference row above it);
* **zero wrong verdicts**: a differential sweep through the same proxy
  answers bit-identically to the direct service on every query that
  succeeds;
* **disk faults lose nothing acknowledged**: the checkpoint storm
  recovers the exact oracle state, and corrupting the newest epoch
  afterwards rolls back to the retained last-good epoch (typed
  rollback, never a silent wrong answer).

Every fault draw is seeded, so a failing run names the plan that
replays it.
"""

from __future__ import annotations

import functools
from typing import Dict

import numpy as np

import _common
from _common import register_report, write_bench_json
from repro import ShardedEngine, faults
from repro.analysis.report import format_table
from repro.engine import RangeQueryService, persist
from repro.net import (
    LoadConfig,
    RetryPolicy,
    ServerConfig,
    SyncClient,
    run_loadgen,
    serve_in_thread,
)

SEED = _common.SEED
UNIVERSE = 2**40
N_KEYS = max(1_000, int(4_000 * _common.SCALE))

#: Transport storm (the acceptance bar is >= 10% resets).
RESET_P = 0.10
PARTIAL_P = 0.25
STALL_P = 0.02

CLIENTS = 64
CONNECTIONS = 4
CHAOS_QPS = 800.0
N_REQUESTS = max(400, int(1_000 * _common.SCALE))
N_VERDICTS = max(150, int(300 * _common.SCALE))

#: Disk storm: torn writes / EIO per file operation during checkpoints.
#: A checkpoint performs dozens of file operations, so even these rates
#: fail a large fraction of checkpoints while letting others commit —
#: both recovery paths (old-manifest + WAL, committed-manifest + replay)
#: get exercised.
DISK_TORN_P = 0.05
DISK_EIO_P = 0.03
DISK_OPS = max(240, int(480 * _common.SCALE))
DISK_CHECKPOINT_EVERY = 30
DISK_UNIVERSE = 2**16

#: Gates enforced by the CI chaos step.
GOODPUT_FLOOR = 0.85


@functools.lru_cache(maxsize=None)
def _keys() -> np.ndarray:
    return _common.load_dataset("uniform", N_KEYS, universe=UNIVERSE, seed=SEED)


@functools.lru_cache(maxsize=None)
def _service() -> RangeQueryService:
    engine = ShardedEngine(UNIVERSE, num_shards=2, memtable_limit=4096)
    for key in _keys():
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return RangeQueryService(engine, num_threads=2, cache_blocks=1024)


def _retry() -> RetryPolicy:
    return RetryPolicy(max_attempts=8, base_delay=0.005, seed=SEED)


def _load_cell(*, chaos: bool) -> Dict[str, object]:
    """One open-loop run — directly against the server, or through the
    fault proxy with the reset storm on."""
    cfg = LoadConfig(
        clients=CLIENTS, connections=CONNECTIONS, rate=CHAOS_QPS,
        n_requests=N_REQUESTS, distribution="zipf", seed=SEED,
        timeout=60.0, request_timeout=10.0, retry=_retry(),
    )
    plan = faults.FaultPlan(
        seed=SEED, reset=RESET_P, partial=PARTIAL_P,
        stall=STALL_P, stall_s=0.01,
    )
    handle = serve_in_thread(_service(), config=ServerConfig())
    try:
        if chaos:
            with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
                report = run_loadgen(
                    proxy.host, proxy.port, cfg,
                    universe=UNIVERSE, keys=_keys(),
                )
                resets = proxy.counters["resets_injected"]
                chunks = proxy.counters["chunks_forwarded"]
        else:
            report = run_loadgen(
                handle.host, handle.port, cfg, universe=UNIVERSE, keys=_keys()
            )
            resets = chunks = 0
    finally:
        handle.stop()
    return {
        "chaos": chaos,
        "reset_p": RESET_P if chaos else 0.0,
        "offered_qps": report.offered_qps,
        "achieved_qps": report.achieved_qps,
        "sent": report.sent,
        "completed": report.completed,
        "shed": report.shed,
        "errors": report.errors,
        "error_classes": dict(report.error_classes),
        "goodput": report.completed / max(report.sent, 1),
        "p99_s": report.p99,
        "resets_injected": resets,
        "chunks_forwarded": chunks,
    }


def _verdict_cell() -> Dict[str, object]:
    """Differential sweep through the storm: every answered query must
    match the direct service bit-for-bit."""
    service = _service()
    rng = np.random.default_rng(SEED + 7)
    los = rng.integers(0, UNIVERSE - 1024, N_VERDICTS, dtype=np.uint64)
    his = los + rng.integers(0, 1024, N_VERDICTS, dtype=np.uint64)
    direct = [
        service.range_empty(int(lo), int(hi)) for lo, hi in zip(los, his)
    ]
    plan = faults.FaultPlan(
        seed=SEED + 1, reset=RESET_P, partial=PARTIAL_P,
        stall=STALL_P, stall_s=0.01,
    )
    wrong = answered = surfaced = 0
    handle = serve_in_thread(service, config=ServerConfig())
    try:
        with faults.FaultyTransport(handle.host, handle.port, plan) as proxy:
            client = SyncClient(
                proxy.host, proxy.port, timeout=30.0, request_timeout=10.0,
                retry=_retry(),
            )
            try:
                for i, (lo, hi) in enumerate(zip(los, his)):
                    try:
                        answer = client.range_empty(int(lo), int(hi))
                    except Exception:
                        surfaced += 1
                        continue
                    answered += 1
                    if answer != direct[i]:
                        wrong += 1
            finally:
                client.close()
            resets = proxy.counters["resets_injected"]
    finally:
        handle.stop()
    return {
        "queries": N_VERDICTS,
        "answered": answered,
        "typed_errors": surfaced,
        "wrong_verdicts": wrong,
        "resets_injected": resets,
    }


def _disk_cell() -> Dict[str, object]:
    """Checkpoint storm + rollback drill against a dict oracle."""
    import shutil
    import tempfile
    import warnings
    from pathlib import Path

    root = Path(tempfile.mkdtemp(prefix="bench_faults_"))
    try:
        db = root / "db"
        plan = faults.FaultPlan(
            seed=SEED, torn_write=DISK_TORN_P, io_error=DISK_EIO_P
        )
        engine = ShardedEngine(
            DISK_UNIVERSE, num_shards=2, memtable_limit=32, directory=db
        )
        rng = np.random.default_rng(SEED)
        oracle: Dict[int, int] = {}
        failed = succeeded = 0
        for index in range(1, DISK_OPS + 1):
            key = int(rng.integers(DISK_UNIVERSE))
            value = int(rng.integers(1 << 20))
            engine.put(key, value)
            oracle[key] = value
            if index % DISK_CHECKPOINT_EVERY == 0:
                with faults.inject(plan):
                    try:
                        engine.checkpoint()
                        succeeded += 1
                    except OSError:
                        failed += 1
        engine.close(checkpoint=False)  # crash
        reopened = ShardedEngine.open(db)
        recovered = dict(reopened.range_scan(0, DISK_UNIVERSE - 1))
        reopened.close()  # clean checkpoint: newest epoch = full oracle
        recovered_exact = recovered == oracle

        # Second clean checkpoint so *both* retained epochs hold the full
        # oracle (the storm may have failed every mid-run checkpoint, in
        # which case no previous epoch exists yet).
        settle = ShardedEngine.open(db)
        settle.checkpoint()
        settle.close(checkpoint=False)

        # Rollback drill: flip one bit in a newest-epoch blob; open must
        # promote the retained previous epoch, not serve the damage.
        chaos = faults.FaultyDir(db, faults.FaultPlan(seed=SEED + 2))
        manifest = persist.load_manifest(db)
        sid, names = next(iter(persist.referenced_runs(manifest).items()))
        chaos.flip_bit(path=db / f"shard-{sid:04d}" / sorted(names)[0])
        scrub_caught = not persist.scrub_snapshot(db)["ok"]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            rolled = ShardedEngine.open(db)
        try:
            rollback_typed = rolled.rolled_back
            rollback_state = dict(rolled.range_scan(0, DISK_UNIVERSE - 1))
        finally:
            rolled.close(checkpoint=False)
        # Both epochs hold the full oracle, so the rollback must too.
        rollback_never_wrong = rollback_state == oracle
        return {
            "ops": DISK_OPS,
            "checkpoints_failed": failed,
            "checkpoints_succeeded": succeeded,
            "faults_injected": plan.total_injected(),
            "recovered_exact": recovered_exact,
            "scrub_caught_damage": scrub_caught,
            "rollback_typed": rollback_typed,
            "rollback_never_wrong": rollback_never_wrong,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


@functools.lru_cache(maxsize=None)
def _report() -> Dict[str, Dict[str, object]]:
    cells = {
        "clean": _load_cell(chaos=False),
        "chaos": _load_cell(chaos=True),
        "verdicts": _verdict_cell(),
        "disk": _disk_cell(),
    }
    rows = [
        [
            name,
            f"{cell['reset_p']:.0%}",
            f"{cell['achieved_qps']:,.0f}",
            f"{cell['goodput']:.1%}",
            f"{cell['errors']:,}",
            f"{cell['resets_injected']:,}",
            f"{cell['p99_s'] * 1e3:.1f}",
        ]
        for name, cell in cells.items()
        if "goodput" in cell
    ]
    rows.append([
        "verdicts",
        f"{RESET_P:.0%}",
        "-",
        f"{cells['verdicts']['answered']}/{cells['verdicts']['queries']}",
        f"{cells['verdicts']['wrong_verdicts']} wrong",
        f"{cells['verdicts']['resets_injected']:,}",
        "-",
    ])
    disk = cells["disk"]
    rows.append([
        "disk",
        "-",
        "-",
        f"{disk['checkpoints_failed']}/{disk['checkpoints_failed'] + disk['checkpoints_succeeded']} ckpt failed",
        "exact" if disk["recovered_exact"] else "DIVERGED",
        f"{disk['faults_injected']:,}",
        "-",
    ])
    register_report(
        "faults",
        format_table(
            ["cell", "reset p", "achieved q/s", "goodput",
             "errors", "faults injected", "p99 ms"],
            rows,
            title=(
                f"Chaos goodput ({CLIENTS} clients over {CONNECTIONS} "
                f"connections, {RESET_P:.0%} resets, retry x8, "
                f"{N_KEYS:,} keys)"
            ),
        ),
    )
    write_bench_json(
        "faults",
        results=cells,
        config={
            "n_keys": N_KEYS,
            "clients": CLIENTS,
            "connections": CONNECTIONS,
            "rate_qps": CHAOS_QPS,
            "n_requests": N_REQUESTS,
            "n_verdicts": N_VERDICTS,
            "reset_p": RESET_P,
            "partial_p": PARTIAL_P,
            "stall_p": STALL_P,
            "disk_torn_p": DISK_TORN_P,
            "disk_eio_p": DISK_EIO_P,
            "disk_ops": DISK_OPS,
            "goodput_floor": GOODPUT_FLOOR,
            "seed": SEED,
        },
    )
    return cells


def test_storm_actually_fired():
    """A chaos bench that injected nothing gates nothing: the proxy must
    have reset real connections and the disk storm must have broken
    real checkpoints (all seeded, so this is stable, not flaky)."""
    cells = _report()
    assert cells["chaos"]["resets_injected"] > 0, cells["chaos"]
    assert cells["verdicts"]["resets_injected"] > 0, cells["verdicts"]
    assert cells["disk"]["faults_injected"] > 0, cells["disk"]
    assert cells["disk"]["checkpoints_failed"] > 0, cells["disk"]


def test_goodput_survives_the_reset_storm():
    """The headline gate: >= 10% connection resets, yet bounded retries
    keep request-level goodput above the floor (and the clean cell shows
    what was lost)."""
    cells = _report()
    assert cells["clean"]["errors"] == 0, cells["clean"]
    chaos = cells["chaos"]
    assert chaos["goodput"] >= GOODPUT_FLOOR, (
        f"goodput {chaos['goodput']:.1%} under the {GOODPUT_FLOOR:.0%} "
        f"floor ({chaos['completed']}/{chaos['sent']} completed, "
        f"errors by class: {chaos['error_classes']})"
    )


def test_zero_wrong_verdicts_under_chaos():
    """Resets, stalls and fragmentation may cost goodput — never
    correctness: every answered differential query matched the direct
    service exactly."""
    cell = _report()["verdicts"]
    assert cell["answered"] > 0, cell
    assert cell["wrong_verdicts"] == 0, (
        f"{cell['wrong_verdicts']} silently wrong answers out of "
        f"{cell['answered']} under the reset storm"
    )


def test_disk_storm_loses_nothing_acknowledged():
    """Torn checkpoint writes and EIO may fail checkpoints, but recovery
    returns the exact oracle; a corrupted newest epoch is caught by
    scrub and rolls back to the retained last-good epoch with zero
    wrong values."""
    cell = _report()["disk"]
    assert cell["recovered_exact"], cell
    assert cell["scrub_caught_damage"], cell
    assert cell["rollback_typed"], cell
    assert cell["rollback_never_wrong"], cell
