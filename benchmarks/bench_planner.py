"""Batch query planner bench: probe reduction at equal verdicts.

The planner (:mod:`repro.engine.planner`) fronts the columnar batch
path with a dedup/cover-merge rewrite and a ``runs_version``-tagged
negative-result cache. This bench drives the workload shape the net
front door's batching windows actually produce — Zipfian
duplicate-heavy batches mixed with a recurring set of provably-empty
probes — through a planner-attached engine and an identical plain one,
and counts **filter probes** (the engine ledger's
``total_filter_decisions``: every per-run prune-or-read decision) on
each side.

Gates enforced by the CI perf-smoke step (and recorded in
``BENCH_planner.json`` either way):

* **identical verdicts**: every planned batch is bit-identical to the
  unplanned one — the planner must never trade correctness for probes;
* **probe reduction**: the planned path spends at least
  :data:`PROBE_REDUCTION_FLOOR` (1.5x) fewer probes per query than the
  unplanned path on the mixed workload;
* **the cache is live**: the negative cache reports real hits — the
  reduction is dedup *and* replay, not dedup alone (the ``dedup_only``
  cell attributes the split).
"""

from __future__ import annotations

import functools
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

import _common
from _common import register_report, write_bench_json
from repro.analysis.report import format_table
from repro.engine import BatchPlanner, ShardedEngine
from repro.workloads.queries import uncorrelated_queries, zipfian_queries

UNIVERSE = 2**40
N_KEYS = max(2_000, int(8_000 * _common.SCALE))
SEED = _common.SEED
RANGE_SIZE = 32

#: Batches per pass — one per simulated batching-window flush.
N_BATCHES = 6
#: Passes over the batch list; pass 2+ replays the negative cache.
N_PASSES = 2
#: Zipfian (hot, duplicate-heavy, mostly non-empty) queries per batch.
N_ZIPF = max(200, int(600 * _common.SCALE))
#: Recurring provably-empty queries per batch (the negcache's diet).
N_EMPTY = max(100, int(300 * _common.SCALE))
#: Few hot anchors -> heavy exact duplication inside every batch.
N_HOT = 48

#: Gate enforced by the CI perf-smoke step.
PROBE_REDUCTION_FLOOR = 1.5


@functools.lru_cache(maxsize=None)
def _load_keys() -> np.ndarray:
    return _common.load_dataset(
        "uniform", N_KEYS, universe=UNIVERSE, seed=SEED
    )


@functools.lru_cache(maxsize=None)
def _batches() -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """The mixed batch list, identical for every cell.

    Each batch is a fresh Zipfian draw (duplicates *within* a batch)
    plus the same recurring uncorrelated — hence provably empty — query
    set (repeats *across* batches, which is what a negative cache can
    serve). Drawn once and cached so every cell answers byte-identical
    inputs.
    """
    keys = _load_keys()
    empties = uncorrelated_queries(
        N_EMPTY, RANGE_SIZE, UNIVERSE, keys=keys, seed=SEED + 7
    )
    e_lo = np.asarray([lo for lo, _ in empties], dtype=np.uint64)
    e_hi = np.asarray([hi for _, hi in empties], dtype=np.uint64)
    batches = []
    for b in range(N_BATCHES):
        z_lo, z_hi = zipfian_queries(
            keys, N_ZIPF, RANGE_SIZE, UNIVERSE,
            n_hot=N_HOT, seed=SEED + 10 + b,
        )
        batches.append((
            np.concatenate((z_lo, e_lo)), np.concatenate((z_hi, e_hi)),
        ))
    return tuple(batches)


def _build_engine() -> ShardedEngine:
    engine = ShardedEngine(UNIVERSE, num_shards=4, memtable_limit=4096)
    for key in _load_keys():
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    return engine


def _run_cell(planner: Optional[BatchPlanner]) -> Dict[str, object]:
    """Answer every batch ``N_PASSES`` times; count probes and time it."""
    engine = _build_engine()
    if planner is not None:
        engine.attach_planner(planner)
    verdicts: List[np.ndarray] = []
    probes_before = engine.stats.total_filter_decisions
    start = time.perf_counter()
    for _ in range(N_PASSES):
        for los, his in _batches():
            verdicts.append(engine.batch_range_empty(los, his))
    elapsed = time.perf_counter() - start
    probes = engine.stats.total_filter_decisions - probes_before
    n_queries = sum(int(los.size) for los, _ in _batches()) * N_PASSES
    snapshot = planner.stats_snapshot() if planner is not None else None
    return {
        "probes": int(probes),
        "queries": n_queries,
        "probes_per_query": probes / n_queries,
        "elapsed_s": elapsed,
        "op_s": n_queries / elapsed if elapsed else 0.0,
        "planner": snapshot,
        "_verdicts": verdicts,  # stripped before JSON
    }


@functools.lru_cache(maxsize=None)
def _report() -> Dict[str, Dict[str, object]]:
    cells = {
        "unplanned": _run_cell(None),
        "dedup_only": _run_cell(BatchPlanner(cache_capacity=0)),
        "planned": _run_cell(BatchPlanner()),
    }
    base = cells["unplanned"]["probes_per_query"]
    rows = []
    for name, cell in cells.items():
        planner = cell["planner"]
        negcache = (planner or {}).get("negative_cache") or {}
        rows.append([
            name,
            f"{cell['probes']:,}",
            f"{cell['probes_per_query']:.2f}",
            f"{base / cell['probes_per_query']:.2f}x",
            f"{cell['op_s']:,.0f}",
            (f"{planner['duplicates_folded']:,}" if planner else "-"),
            (f"{negcache['hit_rate']:.1%}" if negcache.get("enabled")
             else "-"),
        ])
    register_report(
        "planner",
        format_table(
            ["cell", "probes", "probes/query", "reduction", "q/s",
             "dups folded", "negcache hit"],
            rows,
            title=(
                f"Batch query planner ({N_BATCHES}x{N_PASSES} batches of "
                f"{N_ZIPF} zipf(n_hot={N_HOT}) + {N_EMPTY} recurring empty "
                f"queries, {N_KEYS:,} keys)"
            ),
        ),
    )
    write_bench_json(
        "planner",
        results={
            name: {k: v for k, v in cell.items() if k != "_verdicts"}
            for name, cell in cells.items()
        },
        config={
            "n_keys": N_KEYS,
            "range_size": RANGE_SIZE,
            "n_batches": N_BATCHES,
            "n_passes": N_PASSES,
            "n_zipf": N_ZIPF,
            "n_empty": N_EMPTY,
            "n_hot": N_HOT,
            "probe_reduction_floor": PROBE_REDUCTION_FLOOR,
        },
    )
    return cells


def test_verdicts_identical_planned_vs_unplanned():
    """The planner must never buy probes with wrong answers: every cell
    returns bit-identical verdict columns on the identical batch list."""
    cells = _report()
    want = cells["unplanned"]["_verdicts"]
    for name in ("dedup_only", "planned"):
        got = cells[name]["_verdicts"]
        assert len(got) == len(want)
        for i, (g, w) in enumerate(zip(got, want)):
            np.testing.assert_array_equal(g, w, err_msg=f"{name} batch {i}")


def test_probe_reduction_meets_floor():
    """The tentpole gate: on the duplicate-heavy mixed workload the full
    planner answers the same queries with at least
    ``PROBE_REDUCTION_FLOOR``x fewer filter probes per query."""
    cells = _report()
    reduction = (
        cells["unplanned"]["probes_per_query"]
        / cells["planned"]["probes_per_query"]
    )
    assert reduction >= PROBE_REDUCTION_FLOOR, (
        f"planner probe reduction {reduction:.2f}x "
        f"(floor {PROBE_REDUCTION_FLOOR}x): "
        f"planned {cells['planned']['probes_per_query']:.2f} vs "
        f"unplanned {cells['unplanned']['probes_per_query']:.2f} "
        f"probes/query"
    )


def test_negative_cache_is_live():
    """The reduction must include real cache replay, not dedup alone:
    the recurring empty queries hit from the second batch on, and the
    full planner beats the cache-less variant."""
    cells = _report()
    negcache = cells["planned"]["planner"]["negative_cache"]
    assert negcache["enabled"] and negcache["hits"] > 0
    assert negcache["hit_rate"] > 0.0
    assert (
        cells["planned"]["probes"] < cells["dedup_only"]["probes"]
    ), "negative cache bought no probes over dedup alone"
