"""Application-level benchmark: adversarial load on a filtered LSM store.

The paper motivates range filters as guards against unnecessary disk
reads in key-value stores (§1) and warns that a non-robust filter turns
into an availability risk under adversarial queries (§6.2, §6.7). This
bench closes the loop end-to-end:

* an LSM store holds the dataset across several on-"disk" runs, each
  guarded by the configured filter;
* an adaptive adversary who knows 10% of the keys issues empty range
  probes hugging them, re-targeting confirmed false positives;
* we report the disk reads per probe (the amplification the adversary
  buys) and the filter memory spent.

Expected: without a filter every probe costs one read per run; with a
heuristic filter the adversary locks in ~the same (FPR -> 1); with
Grafite reads per probe stay at ~eps * runs.
"""

from __future__ import annotations

import functools

import pytest

import _common
from _common import SEED, UNIVERSE, register_report
from repro.analysis.report import format_table
from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.filters.surf import SuRF
from repro.workloads.adversary import KeyKnowledgeAdversary
from repro.workloads.datasets import uniform
from repro.lsm import LSMStore

N_KEYS = max(2000, int(20_000 * _common.SCALE))
N_PROBES = max(200, int(2_000 * _common.SCALE))
RANGE = 32
BITS_PER_KEY = 16


def _factory(kind: str):
    if kind == "none":
        return None
    if kind == "Grafite":
        return lambda keys, universe: Grafite(
            keys, universe, bits_per_key=BITS_PER_KEY, max_range_size=RANGE, seed=SEED
        )
    if kind == "Bucketing":
        return lambda keys, universe: Bucketing(
            keys, universe, bits_per_key=BITS_PER_KEY
        )
    if kind == "SuRF":
        return lambda keys, universe: SuRF(
            keys, universe, suffix_mode="real",
            suffix_bits=max(1, BITS_PER_KEY - 10), seed=SEED,
        )
    raise ValueError(kind)


@functools.lru_cache(maxsize=None)
def run_store(kind: str):
    import numpy as np

    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    adversary = KeyKnowledgeAdversary(keys, leaked_fraction=0.1, seed=SEED + 1)
    probes = adversary.craft_queries(N_PROBES, RANGE, UNIVERSE)
    store = LSMStore(
        UNIVERSE, memtable_limit=max(256, N_KEYS // 6), compaction_fanout=8,
        filter_factory=_factory(kind),
    )
    # Arrival order is random, as in a real ingest: every run spans the
    # whole keyspace, so filters (not key-range partitioning) decide
    # which runs a probe must read.
    arrival = keys[np.random.default_rng(SEED + 2).permutation(keys.size)]
    for key in arrival:
        store.put(int(key), b"v")
    store.flush()
    for lo, hi in probes:
        store.range_scan(lo, hi)
    stats = store.stats
    return {
        "runs": store.run_count,
        "filter_kib": store.filter_bits_total / 8 / 1024,
        "reads": stats.reads_performed,
        "avoided": stats.reads_avoided,
        "reads_per_probe": stats.reads_performed / N_PROBES,
    }


KINDS = ("none", "SuRF", "Bucketing", "Grafite")


def _report():
    rows = []
    for kind in KINDS:
        result = run_store(kind)
        rows.append(
            [
                kind,
                result["runs"],
                f"{result['filter_kib']:,.1f}",
                f"{result['reads']:,}",
                f"{result['avoided']:,}",
                f"{result['reads_per_probe']:.3f}",
            ]
        )
    register_report(
        "application_lsm_adversary",
        format_table(
            ["filter", "runs", "filter KiB", "disk reads", "avoided", "reads/probe"],
            rows,
            title=(
                f"LSM store under adversarial empty probes "
                f"({N_KEYS:,} keys, {N_PROBES:,} probes of size {RANGE})"
            ),
        ),
    )


def test_grafite_protects_the_store():
    _report()
    unfiltered = run_store("none")
    grafite = run_store("Grafite")
    # The unfiltered store pays one read per run per probe.
    assert unfiltered["reads_per_probe"] == pytest.approx(unfiltered["runs"])
    # Grafite suppresses almost all of them (bound: runs * eps-ish).
    assert grafite["reads_per_probe"] < 0.15 * unfiltered["reads_per_probe"]


def test_heuristics_fail_under_adversary():
    grafite = run_store("Grafite")
    for kind in ("SuRF", "Bucketing"):
        result = run_store(kind)
        # Key-hugging probes defeat the heuristic: at minimum the run
        # holding the hugged key is read on (almost) every probe, and
        # Grafite beats it by well over an order of magnitude.
        assert result["reads_per_probe"] > 0.9, (kind, result)
        assert result["reads_per_probe"] > 20 * grafite["reads_per_probe"], (
            kind, result, grafite,
        )


def test_lsm_probe_benchmark(benchmark):
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    adversary = KeyKnowledgeAdversary(keys, leaked_fraction=0.1, seed=SEED + 1)
    probes = adversary.craft_queries(100, RANGE, UNIVERSE)
    store = LSMStore(
        UNIVERSE, memtable_limit=max(256, N_KEYS // 6), compaction_fanout=8,
        filter_factory=_factory("Grafite"),
    )
    for key in keys:
        store.put(int(key), b"v")
    store.flush()

    def probe_batch():
        for lo, hi in probes:
            store.range_scan(lo, hi)

    benchmark(probe_batch)
