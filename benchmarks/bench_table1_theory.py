"""Table 1: theoretical space/time bounds, cross-checked against code.

The bench evaluates every closed-form bound of Table 1 for a concrete
parameterisation, prints the paper's summary table, and — this is the
reproduction value — verifies that the *measured* space of our
implementations respects the corresponding formulas (Grafite within its
``n log2(L/eps) + 2n + o(n)`` bound, Rosetta near ``1.44 n log2(L/eps)``,
SuRF above its 10 bits/key floor, and so on).

It also reproduces the §6.1 Fb observation: on a skewed Fb-like dataset
whose bulk fits a small sub-universe, Grafite turns exact (FPR 0) as soon
as the budget covers ``log2(u/n) + 2`` bits per key — the regime where
the problem stops needing approximation at all.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

import _common
from _common import SEED, UNIVERSE, register_report
from repro.analysis.report import format_table
from repro.analysis.theory import (
    grafite_bits,
    lower_bound_bits,
    rosetta_bits,
    table1,
)
from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import SnarfFilter
from repro.filters.surf import SuRF
from repro.workloads.datasets import fb_like, uniform
from repro.workloads.queries import uncorrelated_queries

N = max(2000, int(20_000 * _common.SCALE))
L = 2**5
EPS = 0.01


@functools.lru_cache(maxsize=None)
def measured_filters():
    keys = uniform(N, UNIVERSE, seed=SEED)
    grafite = Grafite(keys, UNIVERSE, eps=EPS, max_range_size=L, seed=SEED)
    bpk_equiv = grafite.size_in_bits / grafite.key_count
    return {
        "keys": keys,
        "Grafite": grafite,
        "Rosetta": Rosetta(
            keys, UNIVERSE, bits_per_key=bpk_equiv, max_range_size=L, seed=SEED
        ),
        "SuRF": SuRF(keys, UNIVERSE, suffix_mode="real", suffix_bits=4, seed=SEED),
        "SNARF": SnarfFilter(keys, UNIVERSE, K=1 / EPS),
        "Bucketing": Bucketing(keys, UNIVERSE, bits_per_key=bpk_equiv),
    }


def _report():
    built = measured_filters()
    grafite = built["Grafite"]
    bucketing = built["Bucketing"]
    surf = built["SuRF"]
    rows = table1(
        N, UNIVERSE, L, EPS,
        surf_internal_nodes=surf._trie.num_nodes,
        surf_suffix_bits=4,
        snarf_K=1 / EPS,
        bucketing_t=bucketing.marked_buckets,
        bucketing_s=bucketing.bucket_size,
    )
    measured_bpk = {
        name: built[name].size_in_bits / built[name].key_count
        for name in ("Grafite", "Rosetta", "SuRF", "SNARF", "Bucketing")
    }
    table_rows = []
    for row in rows:
        formula_bpk = row.space_bits / N if row.space_bits is not None else None
        table_rows.append(
            [
                row.name,
                row.category,
                row.space_formula,
                f"{formula_bpk:.2f}" if formula_bpk is not None else "-",
                f"{measured_bpk[row.name]:.2f}" if row.name in measured_bpk else "-",
                row.query_time,
                "yes" if row.practical else "no",
            ]
        )
    text = format_table(
        ["structure", "class", "space formula", "bits/key (formula)",
         "bits/key (measured)", "query time", "practical"],
        table_rows,
        title=f"Table 1 — theoretical bounds at n={N}, u=2^48, L={L}, eps={EPS}",
    )
    register_report("table1_theory", text)
    return rows, measured_bpk


def test_table1_measured_vs_formula():
    rows, measured = _report()
    n = N
    # Grafite: measured space within its Theorem 3.4 bound (+1 bpk slack
    # for the ceil'd low-part width and word padding).
    assert measured["Grafite"] <= grafite_bits(n, L, EPS) / n + 1.0
    # ...and above the lower bound (it cannot beat Theorem 2.1).
    assert measured["Grafite"] >= lower_bound_bits(n, L, EPS) / n - 2.0
    # Rosetta was budgeted at Grafite's size; its formula says it would
    # need ~1.44x Grafite's log-term to reach the same eps.
    assert rosetta_bits(n, L, EPS) > grafite_bits(n, L, EPS) - 2 * n
    # SuRF floors at 10 bits/key (paper §5).
    assert measured["SuRF"] >= 10.0


def test_fb_like_exact_mode():
    """§6.1: on Fb-like data Grafite solves the problem exactly once the
    budget reaches ~log2(u_eff / n) + 2 bits per key."""
    n = max(1000, int(5000 * _common.SCALE))
    keys = fb_like(n, seed=SEED)
    bulk_universe = 2**38
    bulk = keys[keys < bulk_universe]
    exact_bpk = float(np.ceil(np.log2(bulk_universe / bulk.size) + 2))
    filt = Grafite(
        bulk, bulk_universe, bits_per_key=exact_bpk + 1, max_range_size=L, seed=SEED
    )
    assert filt.is_exact, (exact_bpk, filt.reduced_universe)
    queries = uncorrelated_queries(200, L, bulk_universe, keys=bulk, seed=SEED)
    assert all(not filt.may_contain_range(lo, hi) for lo, hi in queries), (
        "exact mode must have FPR exactly 0"
    )


def test_table1_benchmark_grafite_space_probe(benchmark):
    """Benchmark the Grafite construction used for the table's measured column."""
    keys = measured_filters()["keys"]
    benchmark(
        lambda: Grafite(keys, UNIVERSE, eps=EPS, max_range_size=L, seed=SEED)
    )
