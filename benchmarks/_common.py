"""Shared infrastructure for the per-figure benchmark modules.

Scale: the paper runs 200M keys / 10M queries on C++; this harness runs
the same experiments at a pure-Python-friendly scale (default ~20k keys,
~400 queries per cell; multiply via the ``REPRO_SCALE`` env var). The
universe is ``2^48`` instead of ``2^64`` purely to keep prefix-filter
recursion depths proportionate — relative comparisons are unaffected.

Each figure module computes its full data grid once (cached), writes the
paper-style table to ``benchmarks/results/`` and registers it for the
terminal summary; the pytest-benchmark fixture then times representative
operations so ``--benchmark-only`` also yields machine-readable timings.
"""

from __future__ import annotations

import functools
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.harness import FilterConfig, build_filter
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import (
    correlated_queries,
    nonempty_queries,
    real_extracted_queries,
    uncorrelated_queries,
)

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
UNIVERSE = 2**48
N_KEYS = max(500, int(20_000 * SCALE))
N_QUERIES = max(50, int(400 * SCALE))
SEED = 42

#: Range sizes of §6.1: point (2^0), small (2^5), large (2^10).
RANGE_SIZES = {"point": 1, "small": 2**5, "large": 2**10}

RESULTS_DIR = Path(__file__).parent / "results"

#: Reports registered by benches; flushed by conftest's terminal summary.
REPORTS: Dict[str, str] = {}


def register_report(name: str, text: str) -> None:
    """Persist a figure/table report and queue it for terminal printing."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    REPORTS[name] = text


# ----------------------------------------------------------------------
# Machine-readable bench artifacts (the perf trajectory)
# ----------------------------------------------------------------------
def git_sha() -> str:
    """The repo's current commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        pass
    return "unknown"


def timing_stats(
    fn: Callable[[], object], *, ops: int, repeat: int = 5
) -> Dict[str, float]:
    """Run ``fn`` ``repeat`` times; return op/s plus p50/p99 seconds-per-run.

    With a handful of repetitions p99 degenerates to the max — which is
    exactly what a regression gate wants to see move. ``ops`` is the
    number of logical operations one call performs (e.g. the batch
    size), so ``op_s`` is comparable across batch sizes.
    """
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return {
        "op_s": ops / samples[0],
        "p50_s": float(np.percentile(samples, 50)),
        "p99_s": float(np.percentile(samples, 99)),
        "best_s": samples[0],
        "repeat": repeat,
        "ops": ops,
    }


def write_bench_json(
    name: str,
    *,
    results,
    config: Optional[Dict] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` next to the ``.txt`` reports.

    The payload seeds the repo's machine-readable perf trajectory: every
    file records what was measured (``results``), under which knobs
    (``config``), and on which commit/host, so successive runs diff
    cleanly. ``results`` is typically a list of cells each carrying
    ``op_s`` / ``p50_s`` / ``p99_s`` from :func:`timing_stats`.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "git_sha": git_sha(),
        "recorded_unix": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "scale": SCALE,
        "config": config or {},
        "results": results,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def merge_bench_json(
    name: str,
    *,
    section: str,
    results,
    config: Optional[Dict] = None,
) -> Path:
    """Merge one named section into ``BENCH_<name>.json``.

    Some artifacts aggregate cells measured by *different* bench modules
    (``BENCH_storage.json`` collects the deep-compaction cell from
    ``bench_compaction.py`` and the shared-cache cell from
    ``bench_mp_scaling.py``). Each contributor re-reads the file and
    replaces only its own section, so the modules stay independently
    runnable and the artifact is complete once both have run.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload: Dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    if payload.get("bench") != name or not isinstance(
        payload.get("sections"), dict
    ):
        payload = {"bench": name, "sections": {}}
    payload.update(
        {
            "git_sha": git_sha(),
            "recorded_unix": time.time(),
            "host": {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
            },
            "scale": SCALE,
        }
    )
    payload["sections"][section] = {
        "results": results,
        "config": config or {},
        "recorded_unix": time.time(),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


@functools.lru_cache(maxsize=None)
def dataset(name: str, n: int = N_KEYS) -> np.ndarray:
    """Cached dataset (sorted uint64 keys)."""
    return load_dataset(name, n, universe=UNIVERSE, seed=SEED)


@functools.lru_cache(maxsize=None)
def workload(
    dataset_name: str,
    kind: str,
    range_size: int,
    correlation: float = 0.8,
    n_queries: int = N_QUERIES,
) -> tuple:
    """Cached query workload; returns (build_keys, queries).

    ``kind``: "uncorrelated" | "correlated" | "real" | "nonempty".
    For "real" the build keys differ from the dataset (endpoints are
    extracted), matching §6.1.
    """
    keys = dataset(dataset_name)
    if kind == "uncorrelated":
        queries = uncorrelated_queries(
            n_queries, range_size, UNIVERSE, keys=keys, seed=SEED + 1
        )
        return keys, tuple(queries)
    if kind == "correlated":
        queries = correlated_queries(
            keys, n_queries, range_size, UNIVERSE,
            correlation_degree=correlation, seed=SEED + 2,
        )
        return keys, tuple(queries)
    if kind == "real":
        remaining, queries = real_extracted_queries(
            keys, n_queries, range_size, UNIVERSE, seed=SEED + 3
        )
        return remaining, tuple(queries)
    if kind == "nonempty":
        queries = nonempty_queries(keys, n_queries, range_size, UNIVERSE, seed=SEED + 4)
        return keys, tuple(queries)
    raise ValueError(kind)


def sample_queries_for(keys: np.ndarray, range_size: int, kind: str, correlation: float = 0.8):
    """Tuning sample (for Rosetta/Proteus/REncoderSE), drawn like the workload.

    The paper auto-tunes these filters on a sample of the evaluated query
    distribution; 64 sampled ranges with a distinct seed avoid leaking the
    measured batch itself.
    """
    if kind == "correlated":
        return tuple(
            correlated_queries(
                keys, 64, range_size, UNIVERSE,
                correlation_degree=correlation, seed=SEED + 99,
            )
        )
    return tuple(
        uncorrelated_queries(64, range_size, UNIVERSE, keys=keys, seed=SEED + 99)
    )


def make_config(
    keys: np.ndarray,
    bits_per_key: float,
    range_size: int,
    sample,
) -> FilterConfig:
    return FilterConfig(
        keys=keys,
        universe=UNIVERSE,
        bits_per_key=bits_per_key,
        max_range_size=range_size,
        sample_queries=sample,
        seed=SEED,
    )


def build(name: str, keys: np.ndarray, bits_per_key: float, range_size: int, sample=()):
    """Build a registered filter with the bench defaults."""
    return build_filter(name, make_config(keys, bits_per_key, range_size, sample))


#: Filters whose construction depends on the design range size L.
L_DEPENDENT = {"Grafite", "Rosetta", "PointProbe"}
#: Filters auto-tuned on a query sample (rebuilt when the workload moves).
SAMPLE_DEPENDENT = {"Rosetta", "Proteus", "REncoderSE"}

_FILTER_CACHE: Dict[tuple, object] = {}


def get_filter(
    name: str,
    dataset_name: str,
    bits_per_key: float,
    range_size: int,
    workload_kind: str = "uncorrelated",
    correlation: float = 0.8,
    keys: np.ndarray | None = None,
):
    """Build (or reuse) a filter, caching on the parameters it depends on.

    SuRF/SNARF/Bucketing/REncoder(SS) are workload-independent, so one
    instance serves every correlation degree and range size of a sweep —
    the same reuse the paper's harness performs.
    """
    effective_l = range_size if name in L_DEPENDENT else 0
    sample_key = (
        (workload_kind, range_size, round(correlation, 3))
        if name in SAMPLE_DEPENDENT
        else None
    )
    keys_token = id(keys) if keys is not None else None
    cache_key = (name, dataset_name, bits_per_key, effective_l, sample_key, keys_token)
    cached = _FILTER_CACHE.get(cache_key)
    if cached is not None:
        return cached
    build_keys = keys if keys is not None else dataset(dataset_name)
    sample = (
        sample_queries_for(build_keys, range_size, workload_kind, correlation)
        if name in SAMPLE_DEPENDENT
        else ()
    )
    filt = build(name, build_keys, bits_per_key, range_size, sample)
    _FILTER_CACHE[cache_key] = filt
    return filt


def run_query_batch(filt, queries: Sequence[Tuple[int, int]]) -> int:
    """Count positives over a batch (the benchmarked operation)."""
    positives = 0
    for lo, hi in queries:
        positives += filt.may_contain_range(lo, hi)
    return positives


#: Budget sweep of Figures 4–6 (paper: ~8 to 28 bits per key).
BPK_SWEEP = (8, 14, 20, 26)

#: The four workload rows of Figures 4 and 5.
FIGURE_ROWS = (
    ("CORRELATED", "uniform", "correlated"),
    ("UNCORRELATED", "uniform", "uncorrelated"),
    ("BOOKS", "books", "real"),
    ("OSM", "osm", "real"),
)


def figure_grid(filters: Sequence[str], correlation: float = 0.8):
    """Compute the Figure 4/5 grid.

    Returns ``(fpr, times)`` where ``fpr[row_label][range_label][filter]``
    is the per-budget FPR list and ``times[row_label][filter]`` the average
    ns/query over budgets and range sizes (the side tables of the paper).
    """
    from repro.analysis.fpr import measure_fpr
    from repro.analysis.timing import time_queries

    fpr: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    times: Dict[str, Dict[str, List[float]]] = {}
    for row_label, dataset_name, kind in FIGURE_ROWS:
        fpr[row_label] = {}
        times[row_label] = {name: [] for name in filters}
        for range_label, range_size in RANGE_SIZES.items():
            build_keys, queries = workload(dataset_name, kind, range_size, correlation)
            cell = {name: [] for name in filters}
            for bpk in BPK_SWEEP:
                for name in filters:
                    filt = get_filter(
                        name, dataset_name, bpk, range_size,
                        workload_kind=kind if kind != "real" else "uncorrelated",
                        correlation=correlation,
                        keys=build_keys,
                    )
                    cell[name].append(measure_fpr(filt, queries).fpr)
                    times[row_label][name].append(
                        time_queries(filt, queries).ns_per_op
                    )
            fpr[row_label][range_label] = cell
    avg_times = {
        row: {name: sum(vals) / len(vals) for name, vals in row_times.items()}
        for row, row_times in times.items()
    }
    return fpr, avg_times
