"""Ablations of Grafite's design choices (beyond the paper's figures).

Four studies isolating why each ingredient of §3 is there:

1. **Pairwise-independent hashing** — replace the Wegman-Carter block
   hash with a constant offset (so ``h(x) = x mod r``). Lemma 3.1's
   collision bound dies, and an adversary issuing queries congruent to
   the keys modulo ``r`` drives the FPR to 1; the real hash keeps it at
   ``eps``. This is the distribution-free guarantee made falsifiable.
2. **Elias-Fano vs uncompressed codes** — same hash codes in a plain
   sorted ``uint64`` array with binary search: identical answers, ~4-5x
   the space at typical budgets. Quantifies what the succinct encoding
   buys.
3. **Power-of-two reduced universe** (the §7 string-extension knob) —
   rounding ``r`` up to ``2^k`` costs nothing measurable in FPR and at
   most a fraction of a bit per key.
4. **Bucketing's coarseness knob** — sweeping ``s`` maps the whole
   space/FPR trade-off curve of §4 (the future-work discussion about
   workload-aware bucket sizing starts from this curve).
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

import _common
from _common import N_QUERIES, SEED, UNIVERSE, register_report
from repro.analysis.fpr import measure_fpr
from repro.analysis.report import format_table
from repro.analysis.timing import time_queries
from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite, hashed_query_intervals
from repro.core.hashing import LocalityPreservingHash
from repro.workloads.datasets import uniform
from repro.workloads.queries import uncorrelated_queries

N_KEYS = max(1000, int(10_000 * _common.SCALE))
L = 32
EPS = 0.01


class _ConstantBlockHash(LocalityPreservingHash):
    """Ablated hash: q(block) == 0, i.e. ``h(x) = x mod r``."""

    def hash_block(self, block: int) -> int:
        return 0

    def __call__(self, x: int) -> int:
        return int(x) % self.reduced_universe

    def hash_many(self, keys):
        arr = np.asarray(list(keys) if not isinstance(keys, np.ndarray) else keys,
                         dtype=np.uint64)
        return arr % np.uint64(self.reduced_universe)


def _residue_attack_workload(r: int, n_queries: int):
    """Keys and empty queries sharing residues modulo ``r``.

    Key ``i`` sits at ``i*r + 5``; query ``j`` covers ``[j*r+4, j*r+6]``
    in key-free blocks. Under ``h(x) = x mod r`` every query interval
    contains the shared residue 5, so every answer is a false positive.
    """
    keys = np.arange(1, N_KEYS + 1, dtype=np.uint64) * np.uint64(r) + np.uint64(5)
    free_blocks = np.arange(N_KEYS + 10, N_KEYS + 10 + n_queries)
    queries = [(int(b) * r + 4, int(b) * r + 6) for b in free_blocks]
    return keys, queries


@functools.lru_cache(maxsize=None)
def ablation_hash_family():
    # The adversary aligns its residues to the filter's own reduced
    # universe r = ceil(n L / eps), which is public (it follows from the
    # advertised parameters — no secret besides the hash draw).
    import math

    r = math.ceil(N_KEYS * L / EPS)
    keys, queries = _residue_attack_workload(r, N_QUERIES)
    universe = int(keys.max()) + (N_QUERIES + 64) * r

    real = Grafite(keys, universe, eps=EPS, max_range_size=L, seed=SEED)
    assert real.reduced_universe == r
    weak = Grafite(keys, universe, eps=EPS, max_range_size=L, seed=SEED)
    weak_hash = _ConstantBlockHash(r, domain=universe, seed=SEED)
    # Rebuild the weak filter's codes under the ablated hash.
    from repro.succinct.elias_fano import EliasFano

    weak._hash = weak_hash
    weak._ef = EliasFano(np.unique(weak_hash.hash_many(keys)), universe=r)
    return (
        measure_fpr(real, queries).fpr,
        measure_fpr(weak, queries).fpr,
        EPS,
    )


class UncompressedCodes:
    """Grafite with the Elias-Fano swapped for a raw sorted array."""

    def __init__(self, source: Grafite, keys: np.ndarray) -> None:
        self._r = source.reduced_universe
        self._hash = source._hash
        self._codes = np.unique(self._hash.hash_many(keys))
        self._n = source.key_count
        self._universe = source.universe

    @property
    def size_in_bits(self) -> int:
        return int(self._codes.size) * 64

    def may_contain_range(self, lo: int, hi: int) -> bool:
        if hi - lo + 1 >= self._r:
            return True
        for c, d in hashed_query_intervals(self._hash, self._r, lo, hi):
            idx = int(np.searchsorted(self._codes, c))
            if idx < self._codes.size and int(self._codes[idx]) <= d:
                return True
        return False


@functools.lru_cache(maxsize=None)
def ablation_storage():
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    queries = uncorrelated_queries(N_QUERIES, L, UNIVERSE, keys=keys, seed=SEED + 1)
    ef_filter = Grafite(keys, UNIVERSE, eps=EPS, max_range_size=L, seed=SEED)
    raw_filter = UncompressedCodes(ef_filter, keys)
    agreement = all(
        ef_filter.may_contain_range(lo, hi) == raw_filter.may_contain_range(lo, hi)
        for lo, hi in queries
    )
    return {
        "agreement": agreement,
        "ef_bits_per_key": ef_filter.size_in_bits / ef_filter.key_count,
        "raw_bits_per_key": raw_filter.size_in_bits / ef_filter.key_count,
        "ef_ns": time_queries(ef_filter, queries).ns_per_op,
        "raw_ns": time_queries(raw_filter, queries).ns_per_op,
    }


@functools.lru_cache(maxsize=None)
def ablation_power_of_two():
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    queries = tuple(
        uncorrelated_queries(N_QUERIES, L, UNIVERSE, keys=keys, seed=SEED + 2)
    )
    exact_r = Grafite(keys, UNIVERSE, eps=EPS, max_range_size=L, seed=SEED)
    pow2_r = Grafite(
        keys, UNIVERSE, eps=EPS, max_range_size=L, seed=SEED,
        power_of_two_universe=True,
    )
    return {
        "exact_fpr": measure_fpr(exact_r, queries).fpr,
        "pow2_fpr": measure_fpr(pow2_r, queries).fpr,
        "exact_bpk": exact_r.bits_per_key,
        "pow2_bpk": pow2_r.bits_per_key,
    }


@functools.lru_cache(maxsize=None)
def ablation_workload_aware_bucketing():
    """§7 future work: budget skewed towards the queried key ranges."""
    from repro.core.adaptive_bucketing import WorkloadAwareBucketing

    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    sorted_keys = np.sort(keys)
    rng = np.random.default_rng(SEED + 9)

    def hot_queries(count, seed_offset):
        out = []
        local = np.random.default_rng(SEED + seed_offset)
        hot_limit = UNIVERSE // 32  # queries live in the bottom 1/32nd
        while len(out) < count:
            lo = int(local.integers(0, hot_limit - L))
            hi = lo + L - 1
            idx = int(np.searchsorted(sorted_keys, lo))
            if idx < sorted_keys.size and int(sorted_keys[idx]) <= hi:
                continue
            out.append((lo, hi))
        return out

    sample = hot_queries(128, 1)
    workload = hot_queries(N_QUERIES, 2)
    budget = 6
    plain = Bucketing(keys, UNIVERSE, bits_per_key=budget)
    aware = WorkloadAwareBucketing(
        keys, UNIVERSE, bits_per_key=budget, sample_queries=sample, num_regions=32
    )
    return {
        "plain_fpr": measure_fpr(plain, workload).fpr,
        "aware_fpr": measure_fpr(aware, workload).fpr,
        "plain_bpk": plain.bits_per_key,
        "aware_bpk": aware.bits_per_key,
    }


@functools.lru_cache(maxsize=None)
def ablation_bucket_size():
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    queries = uncorrelated_queries(N_QUERIES, L, UNIVERSE, keys=keys, seed=SEED + 3)
    rows = []
    for log_s in (0, 8, 16, 24, 32, 40):
        filt = Bucketing(keys, UNIVERSE, bucket_size=1 << log_s)
        rows.append(
            (1 << log_s, filt.bits_per_key, measure_fpr(filt, queries).fpr)
        )
    return tuple(rows)


def _report():
    real_fpr, weak_fpr, eps = ablation_hash_family()
    storage = ablation_storage()
    pow2 = ablation_power_of_two()
    buckets = ablation_bucket_size()
    sections = [
        format_table(
            ["variant", "FPR under residue-aligned adversary"],
            [
                ["pairwise-independent q (paper)", f"{real_fpr:.3e}"],
                ["constant q (h = x mod r)", f"{weak_fpr:.3e}"],
                ["design eps", f"{eps:.3e}"],
            ],
            title="Ablation 1 — why the hash family matters (Lemma 3.1)",
        ),
        format_table(
            ["storage", "bits/key", "ns/query", "answers agree"],
            [
                ["Elias-Fano (paper)", f"{storage['ef_bits_per_key']:.2f}",
                 f"{storage['ef_ns']:,.0f}", str(storage["agreement"])],
                ["raw sorted uint64", f"{storage['raw_bits_per_key']:.2f}",
                 f"{storage['raw_ns']:,.0f}", str(storage["agreement"])],
            ],
            title="Ablation 2 — Elias-Fano vs uncompressed codes",
        ),
        format_table(
            ["reduced universe", "bits/key", "FPR"],
            [
                ["r = ceil(nL/eps) (paper)", f"{pow2['exact_bpk']:.2f}", f"{pow2['exact_fpr']:.3e}"],
                ["r = 2^k (string variant)", f"{pow2['pow2_bpk']:.2f}", f"{pow2['pow2_fpr']:.3e}"],
            ],
            title="Ablation 3 — power-of-two reduced universe (§7)",
        ),
        format_table(
            ["bucket size s", "bits/key", "FPR (uncorrelated)"],
            [[f"2^{int(np.log2(s))}", f"{bpk:.2f}", f"{fpr:.3e}"] for s, bpk, fpr in buckets],
            title="Ablation 4 — Bucketing's coarseness knob (§4)",
        ),
    ]
    wa = ablation_workload_aware_bucketing()
    sections.append(
        format_table(
            ["variant", "bits/key", "FPR on the hot region"],
            [
                ["plain Bucketing (§4)", f"{wa['plain_bpk']:.2f}", f"{wa['plain_fpr']:.3e}"],
                ["workload-aware (§7)", f"{wa['aware_bpk']:.2f}", f"{wa['aware_fpr']:.3e}"],
            ],
            title="Ablation 5 — workload-aware Bucketing (future work, engineered)",
        )
    )
    register_report("ablation_design_choices", "\n\n".join(sections))


def test_ablation_hash_family_is_load_bearing():
    real_fpr, weak_fpr, eps = ablation_hash_family()
    _report()
    assert weak_fpr > 0.99, "constant-offset hash must be fully exploitable"
    assert real_fpr <= 3 * eps + 5.0 / N_QUERIES


def test_ablation_elias_fano_saves_space_same_answers():
    storage = ablation_storage()
    assert storage["agreement"], "storage backends must answer identically"
    assert storage["raw_bits_per_key"] > 3 * storage["ef_bits_per_key"]


def test_ablation_power_of_two_is_cheap():
    pow2 = ablation_power_of_two()
    # Rounding r up can only shrink FPR; space grows by < 1.1 bits/key.
    assert pow2["pow2_fpr"] <= pow2["exact_fpr"] + 5.0 / N_QUERIES
    assert pow2["pow2_bpk"] <= pow2["exact_bpk"] + 1.1


def test_ablation_workload_aware_bucketing_helps():
    wa = ablation_workload_aware_bucketing()
    # Same budget envelope, lower FPR where the workload actually lives.
    assert wa["aware_fpr"] <= wa["plain_fpr"]
    assert wa["aware_bpk"] <= wa["plain_bpk"] * 1.5


def test_ablation_bucketing_tradeoff_curve():
    rows = ablation_bucket_size()
    sizes = [bpk for _, bpk, _ in rows]
    fprs = [fpr for _, _, fpr in rows]
    # space decreases monotonically with s, FPR weakly increases.
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert fprs[0] <= fprs[-1]
    assert fprs[-1] > 0.5  # one giant bucket filters nothing


def test_ablation_benchmark_ef_vs_raw(benchmark):
    keys = uniform(N_KEYS, UNIVERSE, seed=SEED)
    queries = uncorrelated_queries(200, L, UNIVERSE, keys=keys, seed=SEED + 4)
    filt = Grafite(keys, UNIVERSE, eps=EPS, max_range_size=L, seed=SEED)
    benchmark(_common.run_query_batch, filt, queries)
