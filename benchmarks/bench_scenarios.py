"""Scenario-matrix gates: the YCSB-style workload suite, differentially.

Runs every registered scenario of :mod:`repro.workloads.scenarios`
against the in-memory engine *and* the threaded service (the two modes
the acceptance bar names; the deeper per-mode sweeps live in
``tests/test_scenarios.py``), with every probe/get/scan verdict checked
against the TTL-aware sorted-dict oracle at drain time and a final
bit-exact state comparison.

Gates enforced by the CI ``scenarios`` step (recorded in
``BENCH_scenarios.json`` either way):

* **verdict exactness**: every ``(scenario, mode)`` run reports zero
  mismatches and a bit-exact final state — expired TTL entries excluded
  exactly, string keys decoded back to their canonical bytes;
* **FPR ceilings**: the I/O ledger's waste ratio (wasted reads over
  performed reads) stays under a per-scenario ceiling — Grafite-backed
  mixes effectively zero, the SuRF-backed string mix under 5%;
* **p99 ceilings per mix**: amortised per-probe and per-scan p99 stay
  under deliberately generous ceilings (they catch order-of-magnitude
  regressions — an accidental per-probe flush, a scan that stopped
  batching — not scheduler jitter on shared CI runners);
* **coverage**: the matrix actually ran the six required mixes through
  both modes (a silently skipped scenario gates nothing).

Seeded via ``REPRO_DIFF_SEED`` (CI runs the pinned default and a second
seed), scaled via ``REPRO_SCALE``.
"""

from __future__ import annotations

import functools
import os
from typing import Dict, List

import _common
from _common import register_report, write_bench_json
from repro.analysis.report import format_table
from repro.workloads.scenarios import run_matrix, scenario_names

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20240731"))
SCALE = max(0.25, _common.SCALE)
MODES = ("engine", "service")
NUM_THREADS = 4

#: The acceptance bar's six required mixes (the registry may grow more).
REQUIRED = (
    "read-heavy", "scan-heavy", "update-heavy",
    "adversarial", "string-keys", "ttl-expiry",
)

#: Ledger-FPR ceilings. Grafite-backed mixes measure ~0.000 at these
#: scales; the SuRF-backed string mix ~0.004. Ceilings sit well above
#: the measured values but far below "the filter stopped working".
FPR_CEILING_DEFAULT = 0.02
FPR_CEILINGS = {"string-keys": 0.05}

#: Amortised per-op p99 ceilings, milliseconds. Measured values are
#: 0.1-0.5 ms; two orders of magnitude of headroom absorbs CI-runner
#: noise while still catching a probe path that fell off the batch API.
PROBE_P99_CEILING_MS = 50.0
SCAN_P99_CEILING_MS = 100.0


@functools.lru_cache(maxsize=1)
def _matrix() -> List:
    return run_matrix(
        scenario_names(), MODES,
        seed=SEED, num_threads=NUM_THREADS, scale=SCALE,
    )


@functools.lru_cache(maxsize=1)
def _report() -> List:
    reports = _matrix()
    rows = []
    for r in reports:
        probe_p99 = r.latency_ms.get("probe", {}).get("p99", 0.0)
        scan_p99 = r.latency_ms.get("scan", {}).get("p99", 0.0)
        rows.append([
            r.scenario,
            r.mode,
            f"{r.ops:,}",
            f"{r.checks:,}",
            str(r.mismatches),
            f"{r.fpr:.4f}",
            f"{probe_p99:.3f}",
            f"{scan_p99:.3f}" if scan_p99 else "-",
            str(r.ttl_now) if r.ttl_now else "-",
            "ok" if r.ok else "DIVERGED",
        ])
    register_report(
        "scenarios",
        format_table(
            ["scenario", "mode", "ops", "checks", "mism",
             "fpr", "probe p99 ms", "scan p99 ms", "ttl", "verdict"],
            rows,
            title=(
                f"Scenario matrix (seed {SEED}, scale {SCALE:g}, "
                f"{NUM_THREADS} service threads)"
            ),
        ),
    )
    write_bench_json(
        "scenarios",
        results=[r.to_dict() for r in reports],
        config={
            "seed": SEED,
            "scale": SCALE,
            "modes": list(MODES),
            "num_threads": NUM_THREADS,
            "fpr_ceiling_default": FPR_CEILING_DEFAULT,
            "fpr_ceilings": FPR_CEILINGS,
            "probe_p99_ceiling_ms": PROBE_P99_CEILING_MS,
            "scan_p99_ceiling_ms": SCAN_P99_CEILING_MS,
        },
    )
    return reports


def _by_pair(reports) -> Dict:
    return {(r.scenario, r.mode): r for r in reports}


def test_matrix_covers_required_mixes():
    """All six required mixes ran through both engine and service — a
    scenario silently dropping out of the matrix gates nothing."""
    pairs = _by_pair(_report())
    for name in REQUIRED:
        for mode in MODES:
            assert (name, mode) in pairs, f"matrix never ran {name}/{mode}"
    assert all(r.checks > 0 for r in _report())


def test_every_run_is_bit_exact():
    """The headline gate: zero verdict mismatches and a bit-exact final
    state on every (scenario, mode) pair — TTL expiry and string
    decoding included."""
    bad = [
        (r.scenario, r.mode, r.mismatches, r.final_match,
         r.mismatch_samples[:3])
        for r in _report() if not r.ok
    ]
    assert not bad, f"scenario runs diverged from the oracle: {bad}"


def test_fpr_ceilings_hold():
    for r in _report():
        ceiling = FPR_CEILINGS.get(r.scenario, FPR_CEILING_DEFAULT)
        assert r.fpr <= ceiling, (
            f"{r.scenario}/{r.mode}: ledger FPR {r.fpr:.4f} over the "
            f"{ceiling:.2f} ceiling ({r.wasted_reads} wasted reads)"
        )


def test_p99_ceilings_hold():
    for r in _report():
        probe_p99 = r.latency_ms.get("probe", {}).get("p99", 0.0)
        scan_p99 = r.latency_ms.get("scan", {}).get("p99", 0.0)
        assert probe_p99 <= PROBE_P99_CEILING_MS, (
            f"{r.scenario}/{r.mode}: probe p99 {probe_p99:.1f} ms over "
            f"the {PROBE_P99_CEILING_MS:.0f} ms ceiling"
        )
        assert scan_p99 <= SCAN_P99_CEILING_MS, (
            f"{r.scenario}/{r.mode}: scan p99 {scan_p99:.1f} ms over "
            f"the {SCAN_P99_CEILING_MS:.0f} ms ceiling"
        )


def test_ttl_scenario_expired_entries():
    """The TTL mix must have actually advanced its clock and aged keys
    out — a stream whose deadlines never fire tests nothing."""
    pairs = _by_pair(_report())
    for mode in MODES:
        r = pairs[("ttl-expiry", mode)]
        assert r.ttl_now > 0, "TTL clock never advanced"


def test_adversary_ran_and_fpr_stayed_bounded():
    """The adversarial mix's epilogue attack completed its rounds with
    the engine answering every crafted probe exactly (mismatches gate
    above) and a bounded last-round FPR — Grafite's robustness claim."""
    pairs = _by_pair(_report())
    for mode in MODES:
        r = pairs[("adversarial", mode)]
        assert r.adversary is not None and r.adversary["rounds"] >= 1
        assert r.adversary["last_round_fpr"] <= 0.5, r.adversary


def test_benchmark_probe_throughput(benchmark):
    """A representative timed cell for ``--benchmark-only`` runs: the
    read-heavy mix straight through the in-memory engine."""
    from repro.workloads.scenarios import run_scenario

    _report()  # ensure the artifact exists even under --benchmark-only
    benchmark(
        run_scenario, "read-heavy",
        mode="engine", seed=SEED, scale=min(SCALE, 0.25),
    )
