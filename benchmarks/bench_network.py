"""Network front-door bench: batching windows, SLO latency, overload sheds.

The question the ``repro.net`` subsystem exists to answer: does putting
an asyncio front door with per-connection **batching windows** in front
of :class:`~repro.engine.RangeQueryService` actually buy network-level
throughput, and does its **admission control** keep the server standing
under deliberate overload? Open-loop load (256 simulated clients with
Zipfian popularity, Poisson arrivals, latency measured from *scheduled*
send time so coordinated omission cannot hide queueing) drives a real
loopback server in every cell.

Gates enforced by the CI perf-smoke step (and recorded in
``BENCH_network.json`` either way):

* **batching wins**: with the batching window on (400 µs), achieved
  throughput at saturating offered load must be ``>= 2x`` the
  one-query-per-frame baseline (window = 0) on the identical workload;
* **p99 SLO**: at the gated (sub-saturation) load, batched-mode p99
  latency stays under :data:`SLO_P99_S` and p50 under
  :data:`SLO_P50_S`;
* **overload sheds, not queues**: against a deliberately tiny in-flight
  budget at saturating load, the server sheds a visible fraction of
  requests, ``peak_inflight`` never exceeds the budget (the queue is
  bounded, the 429 path works), nothing errors, and the server still
  answers afterwards.
"""

from __future__ import annotations

import functools
from typing import Dict

import numpy as np

import _common
from _common import register_report, write_bench_json
from repro.analysis.report import format_table
from repro.engine import RangeQueryService, ShardedEngine
from repro.net import LoadConfig, ServerConfig, serve_in_thread
from repro.workloads.queries import zipfian_queries

UNIVERSE = 2**40
N_KEYS = max(2_000, int(8_000 * _common.SCALE))
SEED = _common.SEED

#: Simulated open-loop clients (the ISSUE floor is 256) over a handful
#: of pipelined sockets — the multiplexing that feeds the windows.
CLIENTS = 256
CONNECTIONS = 8
RANGE_SIZE = 32

#: Saturating offered load: far above loopback capacity, so achieved
#: q/s measures the server, not the generator.
SATURATE_QPS = 50_000.0
CAPACITY_REQUESTS = max(1_500, int(3_000 * _common.SCALE))

#: The gated load for the SLO cell: modest enough that a healthy batched
#: server holds the SLO even on a noisy 2-core CI runner.
GATED_QPS = 600.0
GATED_REQUESTS = max(400, int(900 * _common.SCALE))

BATCH_WINDOW_S = 400e-6
OVERLOAD_INFLIGHT = 32

#: Gates enforced by the CI perf-smoke step.
BATCHING_SPEEDUP_FLOOR = 2.0
SLO_P99_S = 0.35
SLO_P50_S = 0.15
OVERLOAD_SHED_FLOOR = 0.02


@functools.lru_cache(maxsize=None)
def _service() -> RangeQueryService:
    engine = ShardedEngine(UNIVERSE, num_shards=4, memtable_limit=4096)
    keys = _load_keys()
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    service = RangeQueryService(engine, num_threads=4, cache_blocks=4096)
    # Warm the block cache on the bench's own query distribution so cell
    # ordering does not hand later cells a warmer store.
    los, his = zipfian_queries(
        keys, 2_000, RANGE_SIZE, UNIVERSE, seed=SEED + 5
    )
    service.batch_range_empty(los, his)
    return service


@functools.lru_cache(maxsize=None)
def _load_keys() -> np.ndarray:
    return _common.load_dataset(
        "uniform", N_KEYS, universe=UNIVERSE, seed=SEED
    )


def _run_cell(
    *, window_s: float, rate: float, n_requests: int,
    max_inflight: int = 4096,
) -> Dict[str, object]:
    """One loopback cell: a fresh server over the shared warmed service."""
    service = _service()
    handle = serve_in_thread(
        service,
        config=ServerConfig(
            batch_window=window_s, max_inflight=max_inflight
        ),
    )
    try:
        from repro.net import run_loadgen

        cfg = LoadConfig(
            clients=CLIENTS,
            connections=CONNECTIONS,
            rate=rate,
            n_requests=n_requests,
            range_size=RANGE_SIZE,
            distribution="zipf",
            seed=SEED,
        )
        report = run_loadgen(
            handle.host, handle.port, cfg,
            universe=UNIVERSE, keys=_load_keys(),
        )
        # The server must still answer after the storm (the overload
        # cell's whole point; cheap sanity everywhere else).
        from repro.net import SyncClient

        with SyncClient(handle.host, handle.port, timeout=10) as probe:
            probe.ping()
        stats = handle.stats()
    finally:
        handle.stop()
    return {
        "batch_window_us": window_s * 1e6,
        "max_inflight": max_inflight,
        "offered_qps": report.offered_qps,
        "achieved_qps": report.achieved_qps,
        "sent": report.sent,
        "completed": report.completed,
        "shed": report.shed,
        "shed_rate": report.shed_rate,
        "errors": report.errors,
        "p50_s": report.p50,
        "p99_s": report.p99,
        "batches_executed": stats["batches_executed"],
        "queries_answered": stats["queries_answered"],
        "peak_inflight": stats["peak_inflight"],
        "protocol_errors": stats["protocol_errors"],
    }


@functools.lru_cache(maxsize=None)
def _report() -> Dict[str, Dict[str, object]]:
    cells = {
        # One-query-per-frame baseline at saturating load.
        "unbatched": _run_cell(
            window_s=0.0, rate=SATURATE_QPS, n_requests=CAPACITY_REQUESTS
        ),
        # Batching windows on, identical workload.
        "batched": _run_cell(
            window_s=BATCH_WINDOW_S, rate=SATURATE_QPS,
            n_requests=CAPACITY_REQUESTS,
        ),
        # Sub-saturation gated load: the SLO cell.
        "gated": _run_cell(
            window_s=BATCH_WINDOW_S, rate=GATED_QPS,
            n_requests=GATED_REQUESTS,
        ),
        # Deliberate overload against a tiny in-flight budget.
        "overload": _run_cell(
            window_s=0.0, rate=SATURATE_QPS, n_requests=CAPACITY_REQUESTS,
            max_inflight=OVERLOAD_INFLIGHT,
        ),
    }
    rows = [
        [
            name,
            f"{cell['batch_window_us']:.0f}",
            f"{cell['offered_qps']:,.0f}",
            f"{cell['achieved_qps']:,.0f}",
            f"{cell['p50_s'] * 1e3:.1f}",
            f"{cell['p99_s'] * 1e3:.1f}",
            f"{cell['shed_rate']:.1%}",
            f"{cell['completed']:,}/{cell['sent']:,}",
            f"{cell['batches_executed']:,}",
        ]
        for name, cell in cells.items()
    ]
    register_report(
        "network",
        format_table(
            ["cell", "window us", "offered q/s", "achieved q/s",
             "p50 ms", "p99 ms", "shed", "completed", "engine batches"],
            rows,
            title=(
                f"Network front door, open loop ({CLIENTS} clients over "
                f"{CONNECTIONS} connections, zipf L={RANGE_SIZE}, "
                f"{N_KEYS:,} keys)"
            ),
        ),
    )
    write_bench_json(
        "network",
        results=cells,
        config={
            "clients": CLIENTS,
            "connections": CONNECTIONS,
            "n_keys": N_KEYS,
            "range_size": RANGE_SIZE,
            "saturate_qps": SATURATE_QPS,
            "gated_qps": GATED_QPS,
            "capacity_requests": CAPACITY_REQUESTS,
            "gated_requests": GATED_REQUESTS,
            "batch_window_s": BATCH_WINDOW_S,
            "overload_max_inflight": OVERLOAD_INFLIGHT,
            "batching_speedup_floor": BATCHING_SPEEDUP_FLOOR,
            "slo_p99_s": SLO_P99_S,
            "slo_p50_s": SLO_P50_S,
            "overload_shed_floor": OVERLOAD_SHED_FLOOR,
        },
    )
    return cells


def test_all_cells_ran_clean():
    """Every cell completes its full request count one way or the other
    (answered or shed), with zero client-visible errors and zero wire
    protocol errors — the bench is meaningless on a broken server."""
    for name, cell in _report().items():
        assert cell["errors"] == 0, (name, cell)
        assert cell["protocol_errors"] == 0, (name, cell)
        assert cell["completed"] + cell["shed"] == cell["sent"], (name, cell)


def test_batching_window_doubles_throughput():
    """The tentpole gate: at equal saturating offered load the batching
    window must at least double achieved q/s over one-query-per-frame —
    coalescing a few hundred microseconds of a connection's queries into
    one columnar engine batch is the whole point of the window."""
    cells = _report()
    speedup = cells["batched"]["achieved_qps"] / cells["unbatched"]["achieved_qps"]
    assert speedup >= BATCHING_SPEEDUP_FLOOR, (
        f"batching window speedup {speedup:.2f}x "
        f"(floor {BATCHING_SPEEDUP_FLOOR}x): "
        f"batched {cells['batched']['achieved_qps']:,.0f} q/s vs "
        f"unbatched {cells['unbatched']['achieved_qps']:,.0f} q/s"
    )
    # And the coalescing is real, not a timing accident: far fewer
    # engine batches than queries.
    batched = cells["batched"]
    assert batched["batches_executed"] * 4 <= batched["completed"]


def test_p99_under_slo_at_gated_load():
    """At the gated load the batched server must hold the latency SLO —
    open-loop latency (from scheduled send time), so queueing is
    included and coordinated omission cannot flatter the tail."""
    cell = _report()["gated"]
    assert cell["shed"] == 0, cell
    assert cell["p99_s"] < SLO_P99_S, (
        f"gated-load p99 {cell['p99_s'] * 1e3:.1f} ms breaches the "
        f"{SLO_P99_S * 1e3:.0f} ms SLO"
    )
    assert cell["p50_s"] < SLO_P50_S, (
        f"gated-load p50 {cell['p50_s'] * 1e3:.1f} ms breaches the "
        f"{SLO_P50_S * 1e3:.0f} ms SLO"
    )


def test_overload_sheds_instead_of_queueing():
    """Deliberate overload against a tiny in-flight budget: a visible
    fraction of requests must be shed (the 429 path), the in-flight
    queue must never exceed the budget (bounded, not unbounded), and the
    completed requests still finish."""
    cell = _report()["overload"]
    assert cell["shed_rate"] >= OVERLOAD_SHED_FLOOR, (
        f"overload cell shed only {cell['shed_rate']:.1%} "
        f"(floor {OVERLOAD_SHED_FLOOR:.0%}) — admission control inactive"
    )
    assert cell["peak_inflight"] <= OVERLOAD_INFLIGHT, (
        f"peak_inflight {cell['peak_inflight']} exceeded the "
        f"{OVERLOAD_INFLIGHT} budget — the queue is not bounded"
    )
    assert cell["completed"] > 0, cell
