"""Figure 4: heuristic range filters — FPR vs space, four workload rows.

Paper setup: rows are Correlated / Uncorrelated on Uniform keys, then the
Books and Osm datasets with key-extracted workloads; columns are point /
small / large ranges; the x-axis sweeps the space budget (~8–28 bits per
key); side tables report the average query time per row.

Expected shape (paper §6.3): under correlation every heuristic provides
no or little filtering (only the sample-tuned Proteus/REncoderSE filter
at all); on the other rows Bucketing matches or beats the best heuristic
while querying several times faster (the paper reports 5–13x vs SNARF,
and Bucketing as the fastest overall).
"""

from __future__ import annotations

import functools

import pytest

import _common
from _common import (
    BPK_SWEEP,
    RANGE_SIZES,
    figure_grid,
    get_filter,
    register_report,
    run_query_batch,
    workload,
)
from repro.analysis.report import format_series, format_speed_table

FILTERS = ("Bucketing", "SuRF", "SNARF", "Proteus", "REncoderSS", "REncoderSE")


@functools.lru_cache(maxsize=None)
def compute_figure4():
    return figure_grid(FILTERS)


def _report():
    fpr, avg_times = compute_figure4()
    sections = []
    for row_label in fpr:
        for range_label in RANGE_SIZES:
            cell = fpr[row_label][range_label]
            sections.append(
                format_series(
                    "bits/key",
                    list(BPK_SWEEP),
                    [(n, [f"{v:.2e}" for v in cell[n]]) for n in FILTERS],
                    title=f"Figure 4 — {row_label}, {range_label} ranges: FPR vs space",
                )
            )
        sections.append(
            format_speed_table(
                list(avg_times[row_label].items()),
                f"Figure 4 — {row_label}: avg query time",
            )
        )
    register_report("fig4_heuristic", "\n\n".join(sections))
    return fpr, avg_times


def test_fig4_shapes():
    """Qualitative claims of §6.3 at reproduction scale."""
    fpr, avg_times = _report()
    # Correlated row: plain heuristics provide little/no filtering at any
    # budget (Bucketing, SuRF, SNARF near 1); only the workload-tuned
    # designs (Proteus, REncoderSE) do better.
    for name in ("Bucketing", "SuRF", "SNARF"):
        small = fpr["CORRELATED"]["small"][name]
        assert min(small) > 0.3, (name, small)
    # Uncorrelated row: Bucketing's FPR is comparable to the best
    # heuristic at the largest budget (within one decade).
    best = min(
        fpr["UNCORRELATED"]["small"][name][-1] for name in FILTERS
    )
    assert fpr["UNCORRELATED"]["small"]["Bucketing"][-1] <= max(10 * best, 0.02)
    # Query time: the paper reports Bucketing as the fastest heuristic
    # overall (5-13x faster than SNARF, 1.5-4x faster than SuRF).
    # Absolute rankings shift with Python constant factors — Proteus rides
    # numpy's C binary search while Bucketing's Elias-Fano predecessor is
    # interpreted — so we assert the comparisons that survive the language
    # change: Bucketing beats SNARF and SuRF by wide margins on every row.
    for row_label, row_times in avg_times.items():
        assert row_times["Bucketing"] < row_times["SNARF"] / 2, (row_label, row_times)
        assert row_times["Bucketing"] < row_times["SuRF"], (row_label, row_times)
    # FPR decreases (weakly) with budget on the uncorrelated row.
    for name in FILTERS:
        series = fpr["UNCORRELATED"]["small"][name]
        assert series[-1] <= series[0] + 0.05, (name, series)


@pytest.mark.parametrize("name", FILTERS)
def test_fig4_query_benchmark(benchmark, name):
    """pytest-benchmark: uncorrelated small-range batch per heuristic."""
    build_keys, queries = workload("uniform", "uncorrelated", RANGE_SIZES["small"])
    filt = get_filter(
        name, "uniform", 20, RANGE_SIZES["small"],
        workload_kind="uncorrelated", keys=build_keys,
    )
    benchmark(run_query_batch, filt, queries)
